//! Abstract syntax tree for Lucid programs.
//!
//! The tree mirrors the surface language of the paper (§3–§5): a program is
//! a sequence of declarations — constants, global arrays, events, handlers,
//! functions, and memops — whose bodies are C-like statements over a small
//! expression language plus the builtin `Array`, `Event`, and `Sys` modules.
//!
//! Every node carries a [`Span`] for diagnostics. Nodes synthesized by later
//! phases use [`Span::DUMMY`].

use crate::span::Span;
use std::fmt;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    pub name: String,
    pub span: Span,
}

impl Ident {
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }

    /// An identifier with a dummy span, for compiler-synthesized names.
    pub fn synth(name: impl Into<String>) -> Self {
        Ident {
            name: name.into(),
            span: Span::DUMMY,
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Surface types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// `int<<w>>`; plain `int` is `Int(32)`.
    Int(u32),
    Bool,
    Void,
    /// The type of event values (before they are generated).
    Event,
    /// A multicast group of switch locations.
    Group,
    /// `Array<<w>>` — passed to functions by reference. The length is not
    /// part of the type; it is fixed at the `global` declaration.
    Array(u32),
}

impl Ty {
    /// Bit width of an integer type, if this is one.
    pub fn int_width(self) -> Option<u32> {
        match self {
            Ty::Int(w) => Some(w),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int(32) => write!(f, "int"),
            Ty::Int(w) => write!(f, "int<<{w}>>"),
            Ty::Bool => write!(f, "bool"),
            Ty::Void => write!(f, "void"),
            Ty::Event => write!(f, "event"),
            Ty::Group => write!(f, "group"),
            Ty::Array(w) => write!(f, "Array<<{w}>>"),
        }
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    pub ty: Ty,
    pub name: Ident,
    pub span: Span,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Neq,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for operators whose result is `bool`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }

    /// True for the boolean connectives `&&` and `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for operators a single stateful ALU can evaluate on its operand
    /// pair (§4.2): add, subtract, and the bitwise ops. Multiplication,
    /// division, modulo, and shifts by non-constants are not sALU ops.
    pub fn salu_supported(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor
        )
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    BitNot,
}

impl UnOp {
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Not => "!",
            UnOp::Neg => "-",
            UnOp::BitNot => "~",
        }
    }
}

/// Builtin module operations (`Array.*`, `Event.*`, `Sys.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `Array.get(arr, idx)` — plain read.
    ArrayGet,
    /// `Array.getm(arr, idx, memop, arg)` — read through a memop. The paper
    /// also spells this `Array.get(arr, idx, memop, arg)`; the parser
    /// normalizes the 4-argument form to `ArrayGetm`.
    ArrayGetm,
    /// `Array.set(arr, idx, v)` — plain write.
    ArraySet,
    /// `Array.setm(arr, idx, memop, arg)` — write `memop(mem, arg)`.
    ArraySetm,
    /// `Array.update(arr, idx, getop, getarg, setop, setarg)` — parallel
    /// read-and-write: returns `getop(mem, getarg)` and stores
    /// `setop(mem, setarg)`.
    ArrayUpdate,
    /// `Event.delay(ev, microseconds)`.
    EventDelay,
    /// `Event.locate(ev, switch_id)`.
    EventLocate,
    /// `Event.mlocate(ev, group)` — locate at every member of a group.
    EventMLocate,
    /// `Sys.time()` — current time in nanoseconds, truncated to 32 bits.
    SysTime,
    /// `Sys.self()` — this switch's identifier. The bare identifier `SELF`
    /// resolves to the same thing.
    SysSelf,
    /// `Sys.port()` — ingress port of the packet that carried this event.
    SysPort,
}

impl Builtin {
    /// Parse a dotted path into a builtin.
    pub fn from_path(path: &str) -> Option<Builtin> {
        Some(match path {
            "Array.get" => Builtin::ArrayGet,
            "Array.getm" => Builtin::ArrayGetm,
            "Array.set" => Builtin::ArraySet,
            "Array.setm" => Builtin::ArraySetm,
            "Array.update" => Builtin::ArrayUpdate,
            "Event.delay" => Builtin::EventDelay,
            "Event.locate" => Builtin::EventLocate,
            "Event.mlocate" => Builtin::EventMLocate,
            "Sys.time" => Builtin::SysTime,
            "Sys.self" => Builtin::SysSelf,
            "Sys.port" => Builtin::SysPort,
            _ => return None,
        })
    }

    pub fn path(self) -> &'static str {
        match self {
            Builtin::ArrayGet => "Array.get",
            Builtin::ArrayGetm => "Array.getm",
            Builtin::ArraySet => "Array.set",
            Builtin::ArraySetm => "Array.setm",
            Builtin::ArrayUpdate => "Array.update",
            Builtin::EventDelay => "Event.delay",
            Builtin::EventLocate => "Event.locate",
            Builtin::EventMLocate => "Event.mlocate",
            Builtin::SysTime => "Sys.time",
            Builtin::SysSelf => "Sys.self",
            Builtin::SysPort => "Sys.port",
        }
    }

    /// True for the builtins that touch a global array (and therefore
    /// participate in the ordered type-and-effect discipline of §5).
    pub fn is_array_op(self) -> bool {
        matches!(
            self,
            Builtin::ArrayGet
                | Builtin::ArrayGetm
                | Builtin::ArraySet
                | Builtin::ArraySetm
                | Builtin::ArrayUpdate
        )
    }
}

/// Expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// An integer literal with a dummy span.
    pub fn synth_int(value: u64) -> Self {
        Expr::new(ExprKind::Int { value, width: None }, Span::DUMMY)
    }

    /// A variable reference with a dummy span.
    pub fn synth_var(name: impl Into<String>) -> Self {
        Expr::new(ExprKind::Var(Ident::synth(name)), Span::DUMMY)
    }
}

/// The different kinds of expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal, optionally width-annotated (`5` or, via cast
    /// desugaring, a fixed width).
    Int {
        value: u64,
        width: Option<u32>,
    },
    Bool(bool),
    Var(Ident),
    Unary {
        op: UnOp,
        arg: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Call to a user function, a declared event constructor, or a memop
    /// (memops are only callable from `Array` method argument position; the
    /// checker enforces this).
    Call {
        callee: Ident,
        args: Vec<Expr>,
    },
    /// Call to a builtin module operation.
    BuiltinCall {
        builtin: Builtin,
        args: Vec<Expr>,
        span_path: Span,
    },
    /// `hash<<w>>(seed, e1, .., en)` — a w-bit hash of the arguments.
    Hash {
        width: u32,
        args: Vec<Expr>,
    },
    /// `(int<<w>>) e` — truncating/zero-extending cast.
    Cast {
        width: u32,
        arg: Box<Expr>,
    },
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

impl Block {
    pub fn new(stmts: Vec<Stmt>, span: Span) -> Self {
        Block { stmts, span }
    }
}

/// Statement node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

/// The different kinds of statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `ty x = e;` — local binding. `auto` infers the type.
    Local {
        ty: Option<Ty>,
        name: Ident,
        init: Expr,
    },
    /// `x = e;` — assignment to a local.
    Assign { name: Ident, value: Expr },
    /// `if (c) { .. } else { .. }`.
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    /// `generate e;` — schedule an event (possibly located/delayed).
    Generate(Expr),
    /// `mgenerate e;` — schedule an event at every member of its group
    /// location.
    MGenerate(Expr),
    /// `return;` / `return e;`.
    Return(Option<Expr>),
    /// `printf("fmt", args..);` — interpreter-only output, ignored by the
    /// hardware backend.
    Printf { fmt: String, args: Vec<Expr> },
    /// Expression evaluated for its effect (e.g. `Array.set(..)`).
    Expr(Expr),
}

/// Top-level declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    pub kind: DeclKind,
    pub span: Span,
}

/// The different kinds of declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclKind {
    /// `const ty NAME = e;`
    Const { ty: Ty, name: Ident, value: Expr },
    /// `const group NAME = {1, 2};`
    Group { name: Ident, members: Vec<Expr> },
    /// `global name = new Array<<w>>(size);` — persistent state. The
    /// *declaration order* of globals defines the pipeline stage order that
    /// the type-and-effect system enforces (§5.1).
    GlobalArray {
        name: Ident,
        cell_width: u32,
        size: Expr,
    },
    /// `event name(params);`
    Event { name: Ident, params: Vec<Param> },
    /// `handle name(params) { .. }`
    Handler {
        name: Ident,
        params: Vec<Param>,
        body: Block,
    },
    /// `fun ty name(params) { .. }`
    Fun {
        ret_ty: Ty,
        name: Ident,
        params: Vec<Param>,
        body: Block,
    },
    /// `memop name(int a, int b) { .. }` — restricted per §4.2.
    Memop {
        name: Ident,
        params: Vec<Param>,
        body: Block,
    },
}

impl DeclKind {
    /// The declared name, for symbol-table construction.
    pub fn name(&self) -> &Ident {
        match self {
            DeclKind::Const { name, .. }
            | DeclKind::Group { name, .. }
            | DeclKind::GlobalArray { name, .. }
            | DeclKind::Event { name, .. }
            | DeclKind::Handler { name, .. }
            | DeclKind::Fun { name, .. }
            | DeclKind::Memop { name, .. } => name,
        }
    }
}

/// A complete parsed program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    pub decls: Vec<Decl>,
}

impl Program {
    /// Iterate over global array declarations in declaration order.
    pub fn globals(&self) -> impl Iterator<Item = (&Ident, u32, &Expr)> {
        self.decls.iter().filter_map(|d| match &d.kind {
            DeclKind::GlobalArray {
                name,
                cell_width,
                size,
            } => Some((name, *cell_width, size)),
            _ => None,
        })
    }

    /// Iterate over event declarations.
    pub fn events(&self) -> impl Iterator<Item = (&Ident, &Vec<Param>)> {
        self.decls.iter().filter_map(|d| match &d.kind {
            DeclKind::Event { name, params } => Some((name, params)),
            _ => None,
        })
    }

    /// Iterate over handler declarations.
    pub fn handlers(&self) -> impl Iterator<Item = (&Ident, &Vec<Param>, &Block)> {
        self.decls.iter().filter_map(|d| match &d.kind {
            DeclKind::Handler { name, params, body } => Some((name, params, body)),
            _ => None,
        })
    }

    /// Find a declaration by name.
    pub fn find(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.kind.name().name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_display_matches_surface_syntax() {
        assert_eq!(Ty::Int(32).to_string(), "int");
        assert_eq!(Ty::Int(16).to_string(), "int<<16>>");
        assert_eq!(Ty::Array(32).to_string(), "Array<<32>>");
    }

    #[test]
    fn builtin_path_roundtrip() {
        for b in [
            Builtin::ArrayGet,
            Builtin::ArrayGetm,
            Builtin::ArraySet,
            Builtin::ArraySetm,
            Builtin::ArrayUpdate,
            Builtin::EventDelay,
            Builtin::EventLocate,
            Builtin::EventMLocate,
            Builtin::SysTime,
            Builtin::SysSelf,
            Builtin::SysPort,
        ] {
            assert_eq!(Builtin::from_path(b.path()), Some(b));
        }
        assert_eq!(Builtin::from_path("Array.frobnicate"), None);
    }

    #[test]
    fn salu_supported_ops() {
        assert!(BinOp::Add.salu_supported());
        assert!(BinOp::BitXor.salu_supported());
        assert!(!BinOp::Mul.salu_supported());
        assert!(!BinOp::Shl.salu_supported());
    }

    #[test]
    fn program_globals_in_declaration_order() {
        let mk = |n: &str| Decl {
            kind: DeclKind::GlobalArray {
                name: Ident::synth(n),
                cell_width: 32,
                size: Expr::synth_int(8),
            },
            span: Span::DUMMY,
        };
        let p = Program {
            decls: vec![mk("a"), mk("b")],
        };
        let names: Vec<_> = p.globals().map(|(n, _, _)| n.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
