//! Compiler diagnostics.
//!
//! Lucid's design thesis (§4, §5 of the paper) is that data-plane programming
//! errors should be caught *early*, on *untransformed source*, with messages
//! that pinpoint the exact construct at fault — instead of surfacing as
//! cryptic failures in a target-specific backend. Every phase of this
//! compiler therefore reports through [`Diagnostic`], which renders with the
//! offending source line and a caret underline.

use crate::span::{SourceMap, Span};
use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Informational note attached to another diagnostic.
    Note,
    /// Suspicious but not fatal; compilation continues.
    Warning,
    /// Fatal; the phase that raised it fails.
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Note => write!(f, "note"),
            Level::Warning => write!(f, "warning"),
            Level::Error => write!(f, "error"),
        }
    }
}

/// A single diagnostic message with an optional primary span and any number
/// of secondary notes (e.g. "array was declared here").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub level: Level,
    pub message: String,
    /// Primary location of the problem.
    pub span: Option<Span>,
    /// Secondary labelled locations, rendered after the primary one.
    pub notes: Vec<(String, Option<Span>)>,
}

impl Diagnostic {
    /// A fatal error at `span`.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic { level: Level::Error, message: message.into(), span: Some(span), notes: Vec::new() }
    }

    /// A fatal error with no location (e.g. "no main handler defined").
    pub fn error_global(message: impl Into<String>) -> Self {
        Diagnostic { level: Level::Error, message: message.into(), span: None, notes: Vec::new() }
    }

    /// A warning at `span`.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic { level: Level::Warning, message: message.into(), span: Some(span), notes: Vec::new() }
    }

    /// Attach a secondary note pointing at `span`.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), Some(span)));
        self
    }

    /// Attach a free-floating note.
    pub fn with_help(mut self, message: impl Into<String>) -> Self {
        self.notes.push((message.into(), None));
        self
    }

    /// Render this diagnostic against `sm` in a rustc-like format:
    ///
    /// ```text
    /// error: arrays accessed out of declaration order
    ///   --> fw.lucid:9:13
    ///    |
    ///  9 |     int x = Array.get(arr1, idx);
    ///    |             ^^^^^^^^^^^^^^^^^^^^
    ///    = note: arr2 (declared earlier) was already accessed at 8:13
    /// ```
    pub fn render(&self, sm: &SourceMap) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}: {}\n", self.level, self.message));
        if let Some(span) = self.span {
            render_span(&mut out, sm, span);
        }
        for (msg, nspan) in &self.notes {
            out.push_str(&format!("  = note: {msg}\n"));
            if let Some(nspan) = nspan {
                render_span(&mut out, sm, *nspan);
            }
        }
        out
    }
}

fn render_span(out: &mut String, sm: &SourceMap, span: Span) {
    let lc = sm.line_col(span.start);
    out.push_str(&format!("  --> {}:{}:{}\n", sm.name, lc.line, lc.col));
    let line = sm.line_text(lc.line);
    let gutter = format!("{:>4}", lc.line);
    out.push_str(&format!("{} |\n", " ".repeat(gutter.len())));
    out.push_str(&format!("{gutter} | {line}\n"));
    let col = (lc.col - 1) as usize;
    // Clamp the underline to the end of the line: multi-line spans underline
    // only their first line.
    let end_lc = sm.line_col(span.end.saturating_sub(1).max(span.start));
    let width = if end_lc.line == lc.line {
        span.len().max(1).min(line.len().saturating_sub(col).max(1))
    } else {
        line.len().saturating_sub(col).max(1)
    };
    out.push_str(&format!(
        "{} | {}{}\n",
        " ".repeat(gutter.len()),
        " ".repeat(col),
        "^".repeat(width)
    ));
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.level, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// An ordered collection of diagnostics produced by one phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.level == Level::Error)
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Render all diagnostics, separated by blank lines.
    pub fn render(&self, sm: &SourceMap) -> String {
        self.items.iter().map(|d| d.render(sm)).collect::<Vec<_>>().join("\n")
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_source() {
        let sm = SourceMap::new("t.lucid", "int x = 3;\nint y = z;\n");
        let d = Diagnostic::error("unbound variable z", Span::new(19, 20));
        let r = d.render(&sm);
        assert!(r.contains("error: unbound variable z"), "{r}");
        assert!(r.contains("t.lucid:2:9"), "{r}");
        assert!(r.contains("int y = z;"), "{r}");
        assert!(r.contains("        ^"), "{r}");
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning("meh", Span::new(0, 1)));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::error("bad", Span::new(0, 1)));
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn notes_render_after_primary() {
        let sm = SourceMap::new("t.lucid", "global a = new Array<<32>>(4);\n");
        let d = Diagnostic::error("disordered access", Span::new(0, 6))
            .with_note("declared here", Span::new(7, 8))
            .with_help("reorder the declarations");
        let r = d.render(&sm);
        let primary = r.find("disordered access").unwrap();
        let note = r.find("declared here").unwrap();
        let help = r.find("reorder the declarations").unwrap();
        assert!(primary < note && note < help);
    }
}
