//! Compiler diagnostics.
//!
//! Lucid's design thesis (§4, §5 of the paper) is that data-plane programming
//! errors should be caught *early*, on *untransformed source*, with messages
//! that pinpoint the exact construct at fault — instead of surfacing as
//! cryptic failures in a target-specific backend. Every phase of this
//! compiler therefore reports through [`Diagnostic`], which renders with the
//! offending source line and a caret underline.

use crate::span::{SourceMap, Span};
use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Informational note attached to another diagnostic.
    Note,
    /// Suspicious but not fatal; compilation continues.
    Warning,
    /// Fatal; the phase that raised it fails.
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Note => write!(f, "note"),
            Level::Warning => write!(f, "warning"),
            Level::Error => write!(f, "error"),
        }
    }
}

/// A single diagnostic message with an optional primary span and any number
/// of secondary notes (e.g. "array was declared here").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub level: Level,
    /// Stable machine-readable code, assigned by the emitting phase.
    /// Errors use `E0xxx` (`E01xx` lexer/parser, `E02xx` symbols, `E03xx`
    /// memops, `E04xx` type-and-effect, `E06xx` elaboration, `E07xx`
    /// layout); warnings use `W0xxx` (`W00xx` checker dead-code, `W05xx`
    /// the lint pass); the bytecode verifier uses `V00xx`. The
    /// code-registry test pins every emitted code to these ranges.
    pub code: Option<&'static str>,
    pub message: String,
    /// Primary location of the problem.
    pub span: Option<Span>,
    /// Secondary labelled locations, rendered after the primary one.
    pub notes: Vec<(String, Option<Span>)>,
}

impl Diagnostic {
    /// A fatal error at `span`.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            level: Level::Error,
            code: None,
            message: message.into(),
            span: Some(span),
            notes: Vec::new(),
        }
    }

    /// A fatal error with no location (e.g. "no main handler defined").
    pub fn error_global(message: impl Into<String>) -> Self {
        Diagnostic {
            level: Level::Error,
            code: None,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// A warning at `span`.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            level: Level::Warning,
            code: None,
            message: message.into(),
            span: Some(span),
            notes: Vec::new(),
        }
    }

    /// Set the stable diagnostic code.
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = Some(code);
        self
    }

    /// Set the code only if none was assigned yet — phases use this to give
    /// every diagnostic at least a phase-level code at their boundary.
    pub fn or_code(mut self, code: &'static str) -> Self {
        self.code.get_or_insert(code);
        self
    }

    /// Attach a secondary note pointing at `span`.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), Some(span)));
        self
    }

    /// Attach a free-floating note.
    pub fn with_help(mut self, message: impl Into<String>) -> Self {
        self.notes.push((message.into(), None));
        self
    }

    /// Render this diagnostic against `sm` in a rustc-like format:
    ///
    /// ```text
    /// error: arrays accessed out of declaration order
    ///   --> fw.lucid:9:13
    ///    |
    ///  9 |     int x = Array.get(arr1, idx);
    ///    |             ^^^^^^^^^^^^^^^^^^^^
    ///    = note: arr2 (declared earlier) was already accessed at 8:13
    /// ```
    pub fn render(&self, sm: &SourceMap) -> String {
        let mut out = String::new();
        match self.code {
            Some(code) => out.push_str(&format!("{}[{code}]: {}\n", self.level, self.message)),
            None => out.push_str(&format!("{}: {}\n", self.level, self.message)),
        }
        if let Some(span) = self.span {
            render_span(&mut out, sm, span);
        }
        for (msg, nspan) in &self.notes {
            out.push_str(&format!("  = note: {msg}\n"));
            if let Some(nspan) = nspan {
                render_span(&mut out, sm, *nspan);
            }
        }
        out
    }
}

impl Diagnostic {
    /// Serialize to a JSON object against `sm`, for tooling (`lucidc
    /// --json-diagnostics`, editors, CI annotations). Spans carry both byte
    /// offsets and 1-based line/column resolved through the source map.
    pub fn to_json(&self, sm: &SourceMap) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"severity\":{},",
            json_str(&self.level.to_string())
        ));
        match self.code {
            Some(c) => out.push_str(&format!("\"code\":{},", json_str(c))),
            None => out.push_str("\"code\":null,"),
        }
        out.push_str(&format!("\"message\":{},", json_str(&self.message)));
        out.push_str(&format!("\"span\":{},", json_span(sm, self.span)));
        out.push_str("\"notes\":[");
        for (i, (msg, nspan)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"message\":{},\"span\":{}}}",
                json_str(msg),
                json_span(sm, *nspan)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_span(sm: &SourceMap, span: Option<Span>) -> String {
    match span {
        None => "null".to_string(),
        Some(s) => {
            let lc = sm.line_col(s.start);
            format!(
                "{{\"file\":{},\"start\":{},\"end\":{},\"line\":{},\"col\":{}}}",
                json_str(&sm.name),
                s.start,
                s.end,
                lc.line,
                lc.col
            )
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_span(out: &mut String, sm: &SourceMap, span: Span) {
    let lc = sm.line_col(span.start);
    out.push_str(&format!("  --> {}:{}:{}\n", sm.name, lc.line, lc.col));
    let line = sm.line_text(lc.line);
    let gutter = format!("{:>4}", lc.line);
    out.push_str(&format!("{} |\n", " ".repeat(gutter.len())));
    out.push_str(&format!("{gutter} | {line}\n"));
    let col = (lc.col - 1) as usize;
    // Clamp the underline to the end of the line: multi-line spans underline
    // only their first line.
    let end_lc = sm.line_col(span.end.saturating_sub(1).max(span.start));
    let width = if end_lc.line == lc.line {
        span.len().max(1).min(line.len().saturating_sub(col).max(1))
    } else {
        line.len().saturating_sub(col).max(1)
    };
    out.push_str(&format!(
        "{} | {}{}\n",
        " ".repeat(gutter.len()),
        " ".repeat(col),
        "^".repeat(width)
    ));
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.level, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// An ordered collection of diagnostics produced by one phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.level == Level::Error)
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Give every code-less diagnostic the phase-level default `code`.
    /// Called at phase boundaries so downstream tooling always sees a code.
    pub fn or_code_all(mut self, code: &'static str) -> Self {
        for d in &mut self.items {
            d.code.get_or_insert(code);
        }
        self
    }

    /// Append all of `other`'s diagnostics.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Promote every warning to an error (`lucidc --deny-lints`). Codes,
    /// messages, and notes are untouched — only the severity changes.
    pub fn promote_warnings_to_errors(&mut self) {
        for d in &mut self.items {
            if d.level == Level::Warning {
                d.level = Level::Error;
            }
        }
    }

    /// Number of error-level diagnostics.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.level == Level::Error)
            .count()
    }

    /// Render all diagnostics, separated by blank lines.
    pub fn render(&self, sm: &SourceMap) -> String {
        self.items
            .iter()
            .map(|d| d.render(sm))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Serialize the whole collection as a JSON array.
    pub fn to_json(&self, sm: &SourceMap) -> String {
        let items: Vec<String> = self.items.iter().map(|d| d.to_json(sm)).collect();
        format!("[{}]", items.join(","))
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_source() {
        let sm = SourceMap::new("t.lucid", "int x = 3;\nint y = z;\n");
        let d = Diagnostic::error("unbound variable z", Span::new(19, 20));
        let r = d.render(&sm);
        assert!(r.contains("error: unbound variable z"), "{r}");
        assert!(r.contains("t.lucid:2:9"), "{r}");
        assert!(r.contains("int y = z;"), "{r}");
        assert!(r.contains("        ^"), "{r}");
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning("meh", Span::new(0, 1)));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::error("bad", Span::new(0, 1)));
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn code_renders_in_brackets() {
        let sm = SourceMap::new("t.lucid", "int x = 3;\n");
        let d = Diagnostic::error("bad", Span::new(0, 3)).with_code("E0401");
        assert!(
            d.render(&sm).starts_with("error[E0401]: bad"),
            "{}",
            d.render(&sm)
        );
        // or_code does not overwrite an explicit code.
        let d2 = d.or_code("E0400");
        assert_eq!(d2.code, Some("E0401"));
    }

    #[test]
    fn json_escapes_and_resolves_spans() {
        let sm = SourceMap::new("t.lucid", "int x = \"a\";\nint y = z;\n");
        let d = Diagnostic::error("unbound \"z\"", Span::new(21, 22))
            .with_code("E0400")
            .with_help("declare it");
        let j = d.to_json(&sm);
        assert!(j.contains("\"severity\":\"error\""), "{j}");
        assert!(j.contains("\"code\":\"E0400\""), "{j}");
        assert!(j.contains("\"message\":\"unbound \\\"z\\\"\""), "{j}");
        assert!(j.contains("\"line\":2"), "{j}");
        assert!(j.contains("\"col\":9"), "{j}");
        assert!(
            j.contains("\"notes\":[{\"message\":\"declare it\",\"span\":null}]"),
            "{j}"
        );
        let mut ds = Diagnostics::new();
        ds.push(d);
        let arr = ds.to_json(&sm);
        assert!(arr.starts_with('[') && arr.ends_with(']'), "{arr}");
    }

    #[test]
    fn notes_render_after_primary() {
        let sm = SourceMap::new("t.lucid", "global a = new Array<<32>>(4);\n");
        let d = Diagnostic::error("disordered access", Span::new(0, 6))
            .with_note("declared here", Span::new(7, 8))
            .with_help("reorder the declarations");
        let r = d.render(&sm);
        let primary = r.find("disordered access").unwrap();
        let note = r.find("declared here").unwrap();
        let help = r.find("reorder the declarations").unwrap();
        assert!(primary < note && note < help);
    }
}
