//! Resource model of a PISA/Tofino match-action pipeline (§2.2).
//!
//! The compiler backend allocates atomic tables against this model; the
//! evaluation binaries read stage counts out of the resulting layouts. The
//! numbers below follow the public Tofino-1 descriptions used by the paper:
//! 12 match stages per pipeline, a limited number of logical tables and
//! stateful ALUs per stage, and one register (SRAM array) access per packet
//! per stage.

/// Static resource description of one PISA pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Match-action stages available to the program.
    pub stages: usize,
    /// Logical match-action tables per stage.
    pub tables_per_stage: usize,
    /// Stateful ALUs per stage — one register array access each.
    pub salus_per_stage: usize,
    /// Header/metadata ALU operations (VLIW action slots) per stage.
    pub action_slots_per_stage: usize,
    /// SRAM available for register arrays per stage, in bits.
    pub register_bits_per_stage: u64,
    /// Pipeline clock rate: one packet per cycle (§2.2).
    pub clock_hz: u64,
    /// Number of front-panel ports.
    pub front_panel_ports: usize,
    /// Line rate per port, bits/second.
    pub port_gbps: u64,
    /// Shared packet buffer (bytes). Tofino: 22 MB (§7.2).
    pub packet_buffer_bytes: u64,
}

impl PipelineSpec {
    /// The Tofino-like target the paper compiles to.
    pub fn tofino() -> Self {
        PipelineSpec {
            stages: 12,
            tables_per_stage: 16,
            salus_per_stage: 4,
            action_slots_per_stage: 16,
            // 4 register blocks of 128 Kb per stage — enough for the
            // paper's applications, small enough to make layout non-trivial.
            register_bits_per_stage: 4 * 128 * 1024,
            clock_hz: 1_000_000_000,
            front_panel_ports: 128,
            port_gbps: 100,
            packet_buffer_bytes: 22 * 1024 * 1024,
        }
    }

    /// The idealized PISA processor of §7.3: 1 B packets/s, 10 front-panel
    /// ports at 100 Gb/s plus a 100 Gb/s recirculation port.
    pub fn idealized_pisa() -> Self {
        PipelineSpec {
            front_panel_ports: 10,
            ..Self::tofino()
        }
    }

    /// Fair share of packet buffer per port (§7.2 quotes "a bit more than
    /// 320KB per port" for the Tofino).
    pub fn buffer_per_port_bytes(&self) -> u64 {
        self.packet_buffer_bytes / (self.front_panel_ports as u64)
    }

    /// Aggregate front-panel bandwidth in bits/second.
    pub fn front_panel_bps(&self) -> u64 {
        self.front_panel_ports as u64 * self.port_gbps * 1_000_000_000
    }
}

/// Mutable per-stage resource accounting used during table placement.
#[derive(Debug, Clone, Default)]
pub struct StageUsage {
    pub tables: usize,
    pub salus: usize,
    pub action_slots: usize,
    pub register_bits: u64,
    /// Which global arrays are placed in this stage (by id).
    pub arrays: Vec<usize>,
}

impl StageUsage {
    /// Can this stage still take a table needing the given resources?
    pub fn fits(
        &self,
        spec: &PipelineSpec,
        salus: usize,
        action_slots: usize,
        register_bits: u64,
    ) -> bool {
        self.tables < spec.tables_per_stage
            && self.salus + salus <= spec.salus_per_stage
            && self.action_slots + action_slots <= spec.action_slots_per_stage
            && self.register_bits + register_bits <= spec.register_bits_per_stage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino_spec_matches_paper_constants() {
        let t = PipelineSpec::tofino();
        assert_eq!(t.stages, 12);
        assert_eq!(t.packet_buffer_bytes, 22 * 1024 * 1024);
        // §7.2: "a bit more than 320KB per port".
        assert!(t.buffer_per_port_bytes() > 320 * 500); // > 160 KB sanity
        assert_eq!(t.buffer_per_port_bytes(), 22 * 1024 * 1024 / 128);
    }

    #[test]
    fn idealized_pisa_has_ten_ports() {
        let p = PipelineSpec::idealized_pisa();
        assert_eq!(p.front_panel_ports, 10);
        assert_eq!(p.front_panel_bps(), 1_000_000_000_000);
    }

    #[test]
    fn stage_usage_respects_all_budgets() {
        let spec = PipelineSpec::tofino();
        let mut u = StageUsage::default();
        assert!(u.fits(&spec, 1, 1, 1024));
        u.salus = spec.salus_per_stage;
        assert!(!u.fits(&spec, 1, 0, 0), "sALUs exhausted");
        u.salus = 0;
        u.tables = spec.tables_per_stage;
        assert!(!u.fits(&spec, 0, 0, 0), "tables exhausted");
    }
}
