//! Latency model of *remote* control — the Figure 17 baseline.
//!
//! The paper's baseline is Mantis, a driver-level framework running on the
//! switch's management CPU: the fastest published path for reactive control
//! that is still outside the data plane. Installing one entry into a P4
//! match-action table from Mantis "took at least 12 µs ... with an average
//! of 17.5 µs". We model that path as a shifted exponential: a 12 µs floor
//! (PCIe round trip + driver work that always happens) plus an
//! exponentially distributed excess with mean 5.5 µs (scheduling and
//! batching jitter), which reproduces both published moments.
//!
//! The model deliberately excludes flow-arrival *detection* time, exactly
//! as the paper's measurement does ("this is a lower bound because it
//! ignores the time required for the CPU to detect that a new flow has
//! arrived").

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Remote-control (management CPU) installation latency model.
#[derive(Debug, Clone)]
pub struct RemoteControlModel {
    /// Hard latency floor, ns (paper: 12 µs).
    pub floor_ns: f64,
    /// Mean of the exponential excess, ns (paper mean 17.5 µs ⇒ 5.5 µs).
    pub excess_mean_ns: f64,
}

impl Default for RemoteControlModel {
    fn default() -> Self {
        RemoteControlModel {
            floor_ns: 12_000.0,
            excess_mean_ns: 5_500.0,
        }
    }
}

impl RemoteControlModel {
    /// Sample `n` installation latencies (ns), deterministically from `seed`.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = Exp {
            mean: self.excess_mean_ns,
        };
        (0..n)
            .map(|_| self.floor_ns + exp.sample(&mut rng))
            .collect()
    }

    /// Theoretical mean of the model.
    pub fn mean_ns(&self) -> f64 {
        self.floor_ns + self.excess_mean_ns
    }
}

/// Minimal exponential distribution (avoids pulling in `rand_distr`).
struct Exp {
    mean: f64,
}

impl Distribution<f64> for Exp {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean * u.ln()
    }
}

/// Empirical CDF helper shared by the Figure 17 harness: returns
/// `(value, cumulative_probability)` pairs sorted by value.
pub fn ecdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Percentile (0..=100) of a sample set.
pub fn percentile(samples: &[f64], pct: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_is_respected() {
        let m = RemoteControlModel::default();
        let s = m.sample(1_000, 42);
        assert!(s.iter().all(|&x| x >= 12_000.0));
    }

    #[test]
    fn sample_mean_matches_paper_mean() {
        let m = RemoteControlModel::default();
        let s = m.sample(100_000, 7);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        // Paper: average 17.5 µs.
        assert!((mean - 17_500.0).abs() < 300.0, "mean {mean}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = RemoteControlModel::default();
        assert_eq!(m.sample(10, 1), m.sample(10, 1));
        assert_ne!(m.sample(10, 1), m.sample(10, 2));
    }

    #[test]
    fn ecdf_is_monotone_and_ends_at_one() {
        let e = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(e.len(), 3);
        assert!(e.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((e.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_bounds() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&s, 50.0), 3.0);
    }
}
