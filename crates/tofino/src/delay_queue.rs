//! The PFC-pausable delay queue (§3.2 "Implementing delay" and Figure 14's
//! "Delay Queue" series), as a discrete-event simulation.
//!
//! Events to delay are parked in a dedicated egress queue on the
//! recirculation port. The queue is paused almost always; a stream of PFC
//! (Priority Flow Control) frame *pairs*, emitted by the packet generator
//! at a fixed interval, briefly unpauses it — the first frame of a pair
//! opens the queue, the second re-pauses it. Each release, queued event
//! packets drain at line rate, have their delay parameter decremented by
//! their measured queue time, and recirculate back into the queue until the
//! delay reaches zero.
//!
//! Compared with continuous recirculation this trades:
//! * **bandwidth** — each event crosses the port once per release interval
//!   instead of once per ~600 ns loop (a ~20× reduction in the paper), for
//! * **buffer** — parked packets occupy packet buffer (~7 KB for 90 events,
//!   §7.2), and
//! * **timing accuracy** — execution quantizes to the release grid.

use crate::recirc::{RecircPort, WIRE_OVERHEAD_BYTES};

/// Configuration of the pausable delay queue.
#[derive(Debug, Clone)]
pub struct DelayQueue {
    pub port: RecircPort,
    /// Interval between PFC unpause events, ns. The paper quotes releases
    /// "e.g., once every 100 µs"; the measured deployment in Fig 14 drains
    /// more often.
    pub release_interval_ns: u64,
    /// Size of each PFC frame (pause frames are minimum-size Ethernet).
    pub pfc_frame_bytes: u64,
    /// Bytes of packet buffer used per parked event (cell-granular).
    pub buffer_cell_bytes: u64,
}

impl Default for DelayQueue {
    fn default() -> Self {
        DelayQueue {
            port: RecircPort::default(),
            release_interval_ns: 10_000,
            pfc_frame_bytes: 64,
            buffer_cell_bytes: 80,
        }
    }
}

/// Result of delaying a batch of events through the pausable queue.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayQueueReport {
    /// Bandwidth consumed on the recirculation port (event passes + the PFC
    /// stream), bits/second.
    pub bandwidth_bps: f64,
    pub utilization: f64,
    pub mean_error_ns: f64,
    pub max_error_ns: f64,
    pub mean_relative_error: f64,
    /// Peak packet-buffer bytes used by parked events.
    pub buffer_bytes: u64,
    /// Total recirculation passes taken by all events.
    pub total_passes: u64,
}

impl DelayQueue {
    /// Simulate delaying one 64 B event per entry of `delays_ns`,
    /// all submitted at t = 0, until every event has executed.
    ///
    /// Events drain at line rate during each unpause window. An event whose
    /// remaining delay would expire before the *next* release leaves the
    /// loop at that release (its delay parameter is updated from queue
    /// time, so it never executes early); otherwise it re-enters the queue.
    pub fn delay_events(&self, pkt_bytes: u64, delays_ns: &[u64]) -> DelayQueueReport {
        let n = delays_ns.len();
        if n == 0 {
            return DelayQueueReport {
                bandwidth_bps: self.pfc_bandwidth_bps(),
                utilization: self.pfc_bandwidth_bps() / self.port.rate_bps as f64,
                mean_error_ns: 0.0,
                max_error_ns: 0.0,
                mean_relative_error: 0.0,
                buffer_bytes: 0,
                total_passes: 0,
            };
        }
        let ser = self.port.serialization_ns(pkt_bytes);
        // Remaining delay per event.
        let mut remaining: Vec<f64> = delays_ns.iter().map(|&d| d as f64).collect();
        let mut done: Vec<Option<f64>> = vec![None; n]; // execution time
        let mut passes: u64 = 0;
        let interval = self.release_interval_ns as f64;

        let mut releases = 0u64;
        while done.iter().any(Option::is_none) {
            releases += 1;
            let t = releases as f64 * interval;
            // Drain every parked event once, at line rate, in queue order.
            let mut drain_offset = 0.0;
            for i in 0..n {
                if done[i].is_some() {
                    continue;
                }
                let exit_time = t + drain_offset;
                drain_offset += ser;
                passes += 1;
                // Egress updates the delay parameter from queue time.
                remaining[i] = delays_ns[i] as f64 - exit_time;
                if remaining[i] <= interval * 0.5 {
                    // Close enough that waiting another full interval would
                    // overshoot more: execute on this pass. (The hardware
                    // check is `delay == 0` after saturating subtraction;
                    // rounding to the nearer release reproduces the ±half-
                    // interval error the paper reports.)
                    if remaining[i] <= 0.0 {
                        done[i] = Some(exit_time);
                    } else {
                        // Recirculates once more and executes next release.
                        done[i] = Some(exit_time + interval);
                        passes += 1;
                    }
                }
            }
        }

        let span_ns = done
            .iter()
            .map(|d| d.expect("all executed"))
            .fold(0.0f64, f64::max)
            .max(interval);
        let event_bits = (passes * (pkt_bytes + WIRE_OVERHEAD_BYTES) * 8) as f64;
        let bandwidth = event_bits / (span_ns * 1e-9) + self.pfc_bandwidth_bps();

        let mut total_err = 0.0;
        let mut max_err = 0.0f64;
        let mut total_rel = 0.0;
        for (i, d) in done.iter().enumerate() {
            let err = (d.expect("executed") - delays_ns[i] as f64).abs();
            total_err += err;
            max_err = max_err.max(err);
            if delays_ns[i] > 0 {
                total_rel += err / delays_ns[i] as f64;
            }
        }
        DelayQueueReport {
            bandwidth_bps: bandwidth,
            utilization: bandwidth / self.port.rate_bps as f64,
            mean_error_ns: total_err / n as f64,
            max_error_ns: max_err,
            mean_relative_error: total_rel / n as f64,
            buffer_bytes: n as u64 * self.buffer_cell_bytes,
            total_passes: passes,
        }
    }

    /// Steady-state bandwidth of delaying `n` events **indefinitely** (the
    /// paper's "delaying 90 concurrent events indefinitely was 5.5 Gb/s"):
    /// every event crosses the port exactly once per release interval.
    pub fn steady_state_bandwidth_bps(&self, pkt_bytes: u64, n: usize) -> f64 {
        let per_interval_bits = (n as u64 * (pkt_bytes + WIRE_OVERHEAD_BYTES) * 8) as f64;
        per_interval_bits / (self.release_interval_ns as f64 * 1e-9) + self.pfc_bandwidth_bps()
    }

    /// Bandwidth of the PFC pause/unpause frame pairs themselves.
    pub fn pfc_bandwidth_bps(&self) -> f64 {
        let bits = (2 * (self.pfc_frame_bytes + WIRE_OVERHEAD_BYTES) * 8) as f64;
        bits / (self.release_interval_ns as f64 * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninety_events_cost_single_digit_gbps() {
        // Fig 14 headline: 90 events indefinitely ≈ 5.5 Gb/s vs >95 Gb/s
        // for the baseline — a ~20x reduction.
        let q = DelayQueue::default();
        let bw = q.steady_state_bandwidth_bps(64, 90);
        assert!(bw > 3e9 && bw < 8e9, "got {} Gb/s", bw / 1e9);
        let baseline = RecircPort::default().delay_baseline(64, &vec![1_000_000; 90]);
        let reduction = baseline.bandwidth_bps / bw;
        assert!(reduction > 10.0, "only {reduction}x reduction");
    }

    #[test]
    fn buffer_usage_matches_paper_scale() {
        // §7.2: "storing 90 64B events in a queue uses around 7KB".
        let q = DelayQueue::default();
        let r = q.delay_events(64, &vec![1_000_000; 90]);
        assert!(
            r.buffer_bytes >= 5_000 && r.buffer_bytes <= 9_000,
            "{}",
            r.buffer_bytes
        );
    }

    #[test]
    fn timing_error_bounded_by_release_interval() {
        let q = DelayQueue::default();
        let delays: Vec<u64> = (0..50).map(|i| 200_000 + i * 13_337).collect();
        let r = q.delay_events(64, &delays);
        assert!(
            r.max_error_ns <= q.release_interval_ns as f64 + 1.0,
            "max error {} ns exceeds interval",
            r.max_error_ns
        );
        assert!(r.mean_error_ns > 0.0, "quantization must cost something");
    }

    #[test]
    fn delay_queue_error_exceeds_baseline_error() {
        // Fig 14 right panel: the pausable queue trades accuracy for
        // bandwidth.
        let delays: Vec<u64> = (0..50).map(|i| 300_000 + i * 7_001).collect();
        let q = DelayQueue::default();
        let dq = q.delay_events(64, &delays);
        let base = RecircPort::default().delay_baseline(64, &delays);
        assert!(
            dq.mean_relative_error > base.mean_relative_error,
            "dq {} <= baseline {}",
            dq.mean_relative_error,
            base.mean_relative_error
        );
    }

    #[test]
    fn pfc_stream_alone_is_cheap() {
        let q = DelayQueue::default();
        assert!(q.pfc_bandwidth_bps() < 0.2e9, "{}", q.pfc_bandwidth_bps());
    }

    #[test]
    fn longer_interval_lowers_bandwidth_raises_error() {
        let short = DelayQueue {
            release_interval_ns: 10_000,
            ..DelayQueue::default()
        };
        let long = DelayQueue {
            release_interval_ns: 100_000,
            ..DelayQueue::default()
        };
        let delays: Vec<u64> = (0..40).map(|i| 500_000 + i * 11_003).collect();
        let rs = short.delay_events(64, &delays);
        let rl = long.delay_events(64, &delays);
        assert!(rl.bandwidth_bps < rs.bandwidth_bps);
        assert!(rl.max_error_ns > rs.max_error_ns);
    }

    #[test]
    fn all_events_execute_at_or_after_release_grid() {
        let q = DelayQueue::default();
        let r = q.delay_events(64, &[123_456, 999_999, 1]);
        assert!(r.total_passes >= 3);
    }
}
