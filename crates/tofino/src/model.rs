//! The explanatory recirculation-overhead model of §7.3 (Figure 16).
//!
//! The stateful firewall recirculates packets for two reasons:
//!
//! * **timeout scanning** — a control thread walks the `N`-entry table once
//!   per check interval `i`, one entry per recirculation: `N / i` pkts/s;
//! * **flow installation** — each new flow may trigger up to `log₂(N)`
//!   Cuckoo relocation steps, one recirculation each: `f · log₂(N)` pkts/s
//!   worst-case.
//!
//! Worst-case recirculation rate: `r = N/i + f·log₂(N)`.
//!
//! On the idealized PISA processor (1 B pkts/s servicing 10 × 100 Gb/s
//! ports), recirculated packets consume pipeline slots that front-panel
//! packets could have used, raising the minimum packet size at which all
//! ports still run at line rate.

use crate::spec::PipelineSpec;

/// Parameters of the stateful-firewall recirculation model.
#[derive(Debug, Clone, Copy)]
pub struct SfwModelParams {
    /// Table size (number of entries), `N`.
    pub table_size: u64,
    /// Per-flow timeout check interval, seconds, `i`.
    pub check_interval_s: f64,
    /// Flow arrival rate, flows/second, `f`.
    pub flow_rate: f64,
}

/// One row of Figure 16.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfwModelRow {
    pub flow_rate: f64,
    /// Worst-case recirculation rate, packets/second.
    pub recirc_rate_pps: f64,
    /// Fraction of the pipeline's packet-processing bandwidth.
    pub pipeline_utilization: f64,
    /// Minimum packet size (bytes) at which all front-panel ports still
    /// sustain line rate.
    pub min_pkt_size_bytes: f64,
}

/// Evaluate the model for one parameter point.
pub fn sfw_recirc_model(spec: &PipelineSpec, p: SfwModelParams) -> SfwModelRow {
    let log_n = (p.table_size as f64).log2();
    let recirc = p.table_size as f64 / p.check_interval_s + p.flow_rate * log_n;
    let pps = spec.clock_hz as f64;
    let utilization = recirc / pps;
    // Front-panel packets per second available once recirculation has taken
    // its slots; every front-panel bit still must fit through them.
    let front_pps = pps - recirc;
    let min_pkt = spec.front_panel_bps() as f64 / (8.0 * front_pps);
    SfwModelRow {
        flow_rate: p.flow_rate,
        recirc_rate_pps: recirc,
        pipeline_utilization: utilization,
        min_pkt_size_bytes: min_pkt,
    }
}

/// The exact parameter sweep of Figure 16: `N = 2^16`, `i = 100 ms`,
/// `f ∈ {10 K, 100 K, 1 M}` flows/s.
pub fn figure16_rows(spec: &PipelineSpec) -> Vec<SfwModelRow> {
    [10_000.0, 100_000.0, 1_000_000.0]
        .into_iter()
        .map(|flow_rate| {
            sfw_recirc_model(
                spec,
                SfwModelParams {
                    table_size: 1 << 16,
                    check_interval_s: 0.1,
                    flow_rate,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 16, first row: f = 10 K flows/s → 815 K pkts/s, 0.08 %
    /// utilization, min packet ≈ 125 B.
    #[test]
    fn figure16_first_row_matches_paper() {
        let rows = figure16_rows(&PipelineSpec::idealized_pisa());
        let r = rows[0];
        // N/i = 65536/0.1 = 655,360; f·log2(N) = 10_000·16 = 160,000.
        assert_eq!(r.recirc_rate_pps, 815_360.0);
        assert!((r.pipeline_utilization - 0.000815).abs() < 1e-4);
        assert!(r.min_pkt_size_bytes > 125.0 && r.min_pkt_size_bytes < 126.0);
    }

    #[test]
    fn figure16_second_row_about_2m() {
        let rows = figure16_rows(&PipelineSpec::idealized_pisa());
        // Paper reports "2M pkts/s" for 100 K flows/s: 655,360 + 1.6 M.
        assert!((rows[1].recirc_rate_pps - 2_255_360.0).abs() < 1.0);
        assert!(rows[1].pipeline_utilization < 0.003);
    }

    #[test]
    fn figure16_third_row_under_two_percent() {
        let rows = figure16_rows(&PipelineSpec::idealized_pisa());
        // Paper: "a workload with 1M new flows per second has less than a
        // 2% bandwidth overhead" and min pkt ≈ 128 B.
        assert!(rows[2].recirc_rate_pps > 16_000_000.0);
        assert!(rows[2].pipeline_utilization < 0.02);
        assert!(
            rows[2].min_pkt_size_bytes > 126.0 && rows[2].min_pkt_size_bytes < 130.0,
            "{}",
            rows[2].min_pkt_size_bytes
        );
    }

    #[test]
    fn min_pkt_without_recirc_is_125() {
        let spec = PipelineSpec::idealized_pisa();
        let r = sfw_recirc_model(
            &spec,
            SfwModelParams {
                table_size: 1,
                check_interval_s: 1e12,
                flow_rate: 0.0,
            },
        );
        assert!((r.min_pkt_size_bytes - 125.0).abs() < 0.001);
    }

    #[test]
    fn recirc_rate_monotone_in_flow_rate() {
        let spec = PipelineSpec::idealized_pisa();
        let mk = |f| {
            sfw_recirc_model(
                &spec,
                SfwModelParams {
                    table_size: 1 << 16,
                    check_interval_s: 0.1,
                    flow_rate: f,
                },
            )
            .recirc_rate_pps
        };
        assert!(mk(10_000.0) < mk(100_000.0));
        assert!(mk(100_000.0) < mk(1_000_000.0));
    }
}
