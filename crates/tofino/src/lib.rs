//! # lucid-tofino
//!
//! A software model of the paper's hardware target — the Intel Tofino /
//! PISA pipeline — standing in for the testbed we do not have (see
//! DESIGN.md §2 for the substitution argument). Four pieces:
//!
//! * [`spec`] — the static resource model (stages, tables, stateful ALUs,
//!   register SRAM) that the compiler backend allocates against.
//! * [`recirc`] — the recirculation port, including the *baseline* way to
//!   delay events (continuous recirculation) measured in Figure 14.
//! * [`delay_queue`] — the PFC-pausable egress queue of §3.2 that makes
//!   delayed events cheap, the other Figure 14 series.
//! * [`model`] / [`remote`] — the §7.3 recirculation-overhead model
//!   (Figure 16) and the Mantis-like remote-control latency baseline used
//!   by Figure 17.

#![forbid(unsafe_code)]

pub mod delay_queue;
pub mod model;
pub mod recirc;
pub mod remote;
pub mod spec;

pub use delay_queue::{DelayQueue, DelayQueueReport};
pub use model::{figure16_rows, sfw_recirc_model, SfwModelParams, SfwModelRow};
pub use recirc::{BaselineReport, RecircPort, WIRE_OVERHEAD_BYTES};
pub use remote::{ecdf, percentile, RemoteControlModel};
pub use spec::{PipelineSpec, StageUsage};
