//! Recirculation-port simulation: delaying events *without* the pausable
//! delay queue (the "Baseline" series of Figure 14).
//!
//! An event that must execute `delay_ns` in the future simply recirculates:
//! every pass through the pipeline-and-loop takes [`RecircPort::loop_ns`],
//! and every pass puts the event packet on the recirculation port once,
//! consuming `wire bits / loop time` of its bandwidth. With enough
//! concurrent delayed events, the port saturates — the paper measured a
//! 100 Gb/s recirculation port effectively saturated (>95 Gb/s) by 90
//! concurrent 64 B events.

/// One 64 B event packet plus Ethernet framing (preamble 8 B, IFG 12 B,
/// FCS already in the 64): what a 100 Gb/s MAC actually spends per packet.
pub const WIRE_OVERHEAD_BYTES: u64 = 20;

/// A recirculation port and its loop timing.
#[derive(Debug, Clone)]
pub struct RecircPort {
    /// Port rate in bits per second (Tofino: 100 Gb/s).
    pub rate_bps: u64,
    /// Latency of one loop — pipeline traversal plus the turnaround —
    /// when the port is unloaded. ~600 ns on the Tofino (§7.4).
    pub loop_ns: u64,
}

impl Default for RecircPort {
    fn default() -> Self {
        RecircPort {
            rate_bps: 100_000_000_000,
            loop_ns: 600,
        }
    }
}

/// Outcome of delaying a batch of events by continuous recirculation.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Bandwidth consumed on the recirculation port, bits/second.
    pub bandwidth_bps: f64,
    /// Port utilization in [0, 1].
    pub utilization: f64,
    /// Mean absolute timing error across the events, ns.
    pub mean_error_ns: f64,
    /// Max absolute timing error, ns.
    pub max_error_ns: f64,
    /// Mean error relative to the requested delay.
    pub mean_relative_error: f64,
    /// Effective loop time after queueing, ns.
    pub effective_loop_ns: f64,
}

impl RecircPort {
    /// Time the port needs to serialize one packet of `pkt_bytes`, in ns.
    pub fn serialization_ns(&self, pkt_bytes: u64) -> f64 {
        ((pkt_bytes + WIRE_OVERHEAD_BYTES) * 8) as f64 * 1e9 / self.rate_bps as f64
    }

    /// Delay `delays_ns` (one entry per concurrent event, 64 B each by
    /// convention) via continuous recirculation and report bandwidth and
    /// timing error.
    ///
    /// When the offered load `n * pkt_time / loop` exceeds the port rate,
    /// packets queue at the recirculation port and every loop stretches to
    /// `n * pkt_time` — the port saturates and timing error grows.
    pub fn delay_baseline(&self, pkt_bytes: u64, delays_ns: &[u64]) -> BaselineReport {
        let n = delays_ns.len();
        if n == 0 {
            return BaselineReport {
                bandwidth_bps: 0.0,
                utilization: 0.0,
                mean_error_ns: 0.0,
                max_error_ns: 0.0,
                mean_relative_error: 0.0,
                effective_loop_ns: self.loop_ns as f64,
            };
        }
        let ser = self.serialization_ns(pkt_bytes);
        // All n packets must pass the port once per loop; if that takes
        // longer than the unloaded loop time, the loop time *is* the
        // serialization backlog.
        let effective_loop = (self.loop_ns as f64).max(n as f64 * ser);
        let bandwidth =
            (n as f64 * (pkt_bytes + WIRE_OVERHEAD_BYTES) as f64 * 8.0) / (effective_loop * 1e-9);
        let bandwidth = bandwidth.min(self.rate_bps as f64);

        let mut total_err = 0.0;
        let mut max_err: f64 = 0.0;
        let mut total_rel = 0.0;
        for &d in delays_ns {
            // The event executes at the first loop boundary >= d.
            let loops = (d as f64 / effective_loop).ceil();
            let exec = loops * effective_loop;
            let err = exec - d as f64;
            total_err += err;
            max_err = max_err.max(err);
            if d > 0 {
                total_rel += err / d as f64;
            }
        }
        BaselineReport {
            bandwidth_bps: bandwidth,
            utilization: bandwidth / self.rate_bps as f64,
            mean_error_ns: total_err / n as f64,
            max_error_ns: max_err,
            mean_relative_error: total_rel / n as f64,
            effective_loop_ns: effective_loop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_of_64b_on_100g() {
        let p = RecircPort::default();
        // (64 + 20) * 8 = 672 bits at 100 Gb/s = 6.72 ns.
        assert!((p.serialization_ns(64) - 6.72).abs() < 1e-9);
    }

    #[test]
    fn single_event_consumes_one_slot_per_loop() {
        let p = RecircPort::default();
        let r = p.delay_baseline(64, &[1_000_000]);
        // 672 bits / 600 ns = 1.12 Gb/s.
        assert!(
            (r.bandwidth_bps / 1e9 - 1.12).abs() < 0.01,
            "{}",
            r.bandwidth_bps
        );
    }

    #[test]
    fn ninety_events_saturate_the_port() {
        // The headline observation of Fig 14: 90 concurrent events without
        // the pausable queue consume over 95 Gb/s.
        let p = RecircPort::default();
        let delays = vec![1_000_000u64; 90];
        let r = p.delay_baseline(64, &delays);
        assert!(r.bandwidth_bps > 95e9, "got {} Gb/s", r.bandwidth_bps / 1e9);
        assert!(r.utilization > 0.95 && r.utilization <= 1.0);
    }

    #[test]
    fn bandwidth_grows_linearly_before_saturation() {
        let p = RecircPort::default();
        let r10 = p.delay_baseline(64, &[1_000_000; 10]);
        let r20 = p.delay_baseline(64, &[1_000_000; 20]);
        let ratio = r20.bandwidth_bps / r10.bandwidth_bps;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn baseline_timing_error_is_small_when_unsaturated() {
        let p = RecircPort::default();
        let r = p.delay_baseline(64, &[1_000_000; 10]);
        // Error bounded by one loop (600 ns) on a 1 ms delay: < 0.1%.
        assert!(r.mean_relative_error < 0.001, "{}", r.mean_relative_error);
    }

    #[test]
    fn empty_batch_is_zero() {
        let p = RecircPort::default();
        let r = p.delay_baseline(64, &[]);
        assert_eq!(r.bandwidth_bps, 0.0);
        assert_eq!(r.utilization, 0.0);
    }
}
