//! End-to-end tests of the `lucidc` binary: flags, output artifacts,
//! JSON diagnostics, and the exit-code contract (0 success, 1 program
//! diagnostics, 2 usage/I-O errors).

use std::path::PathBuf;
use std::process::{Command, Output};

fn lucidc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lucidc"))
        .args(args)
        .output()
        .expect("lucidc runs")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("lucidc-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp source");
    path
}

const GOOD: &str = r#"
global cts = new Array<<32>>(64);
memop plus(int m, int x) { return m + x; }
event pkt(int idx);
handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
"#;

const BAD_TWO_MEMOPS: &str = r#"
memop one(int m, int x) { return m * x; }
memop two(int m, int x) { return x + x; }
"#;

#[test]
fn check_good_program_exits_zero() {
    let f = write_temp("good.lucid", GOOD);
    let out = lucidc(&["check", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok: 1 globals"), "{stdout}");
}

#[test]
fn diagnostics_exit_code_is_one() {
    let f = write_temp("bad.lucid", BAD_TWO_MEMOPS);
    let out = lucidc(&["check", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Both independent memop violations, rendered with codes and carets.
    assert!(stderr.matches("error[E03").count() >= 2, "{stderr}");
    assert!(stderr.contains("m * x"), "{stderr}");
}

#[test]
fn json_diagnostics_are_structured() {
    let f = write_temp("bad2.lucid", BAD_TWO_MEMOPS);
    let out = lucidc(&["check", "--json-diagnostics", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let json = stderr.trim();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(
        json.matches("\"severity\":\"error\"").count() >= 2,
        "{json}"
    );
    assert!(json.contains("\"code\":\"E03"), "{json}");
    assert!(json.contains("\"line\":"), "{json}");
}

#[test]
fn io_and_usage_errors_exit_two() {
    let out = lucidc(&["check", "/nonexistent/definitely-missing.lucid"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = lucidc(&["check"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = lucidc(&["compile", "--emit=wat", "x.lucid"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_subcommand_hints_nearest() {
    let out = lucidc(&["chek", "x.lucid"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand `chek`"), "{stderr}");
    assert!(stderr.contains("did you mean `check`?"), "{stderr}");
}

#[test]
fn emit_variants_produce_artifacts() {
    let f = write_temp("emit.lucid", GOOD);
    let path = f.to_str().unwrap();

    let ast = lucidc(&["compile", "--emit=ast", path]);
    assert_eq!(ast.status.code(), Some(0));
    let s = String::from_utf8_lossy(&ast.stdout);
    assert!(s.contains("handle pkt"), "{s}");

    let ir = lucidc(&["compile", "--emit=ir", path]);
    assert_eq!(ir.status.code(), Some(0));
    let s = String::from_utf8_lossy(&ir.stdout);
    assert!(
        s.contains("handler pkt") && s.contains("atomic tables"),
        "{s}"
    );

    let layout = lucidc(&["compile", "--emit=layout", path]);
    assert_eq!(layout.status.code(), Some(0));
    let s = String::from_utf8_lossy(&layout.stdout);
    assert!(s.contains("total stages:"), "{s}");

    let p4 = lucidc(&["compile", path]);
    assert_eq!(p4.status.code(), Some(0));
    let s = String::from_utf8_lossy(&p4.stdout);
    assert!(s.contains("RegisterAction"), "{s}");
}

#[test]
fn no_opt_and_target_flags_are_accepted() {
    let f = write_temp("flags.lucid", GOOD);
    let path = f.to_str().unwrap();
    let out = lucidc(&["stages", "--no-opt", "--target=pisa", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("total stages:"), "{s}");
}

/// A program that checks cleanly but trips the lint pass: an unused
/// local (W0501), an unused parameter (W0502), and an unused global
/// (W0503).
const LINTY: &str = r#"
global cts = new Array<<32>>(64);
global idle = new Array<<32>>(8);
memop plus(int m, int x) { return m + x; }
event pkt(int idx, int extra);
handle pkt(int idx, int extra) {
    int scratch = 7;
    Array.setm(cts, idx, plus, 1);
}
"#;

#[test]
fn lint_flag_reports_w_codes_as_warnings() {
    let f = write_temp("linty.lucid", LINTY);
    let path = f.to_str().unwrap();

    // Without --lint the program is quietly clean.
    let out = lucidc(&["check", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("W05"), "{stderr}");

    // With --lint the W05xx warnings appear but the exit stays 0.
    let out = lucidc(&["check", "--lint", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[W0501]"), "{stderr}");
    assert!(stderr.contains("warning[W0502]"), "{stderr}");
    assert!(stderr.contains("warning[W0503]"), "{stderr}");
    assert!(stderr.contains("scratch"), "{stderr}");

    // `compile --lint` carries the same diagnostics beside the artifact.
    let out = lucidc(&["compile", "--lint", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[W0501]"), "{stderr}");

    // JSON mode reports the same codes, machine-readable.
    let out = lucidc(&["check", "--lint", "--json-diagnostics", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = String::from_utf8_lossy(&out.stderr).trim().to_string();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains("\"code\":\"W0501\""), "{json}");
    assert!(json.contains("\"severity\":\"warning\""), "{json}");
}

#[test]
fn deny_lints_promotes_warnings_and_exits_one() {
    let f = write_temp("linty-deny.lucid", LINTY);
    let path = f.to_str().unwrap();
    let out = lucidc(&["check", "--deny-lints", path]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[W0501]"), "{stderr}");
    assert!(!stderr.contains("warning[W0501]"), "{stderr}");

    // A lint-clean program passes the gate.
    let clean = write_temp("lint-clean.lucid", GOOD);
    let out = lucidc(&["check", "--deny-lints", clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // `stages` rejects the flags (its output is a layout, not a listing).
    let out = lucidc(&["stages", "--lint", path]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

// ------------------------------------------------------------------- sim

const SIM_SCENARIO: &str = r#"{
  "name": "counter-cli",
  "net": {"switches": 2},
  "events": [
    {"time_ns": 0,   "switch": 1, "event": "pkt", "args": [3]},
    {"time_ns": 100, "switch": 2, "event": "pkt", "args": [3]},
    {"time_ns": 200, "switch": 1, "event": "pkt", "args": [5]}
  ],
  "expect": {
    "handled": 3,
    "arrays": [
      {"switch": 1, "array": "cts", "index": 3, "value": 1},
      {"switch": 2, "array": "cts", "index": 3, "value": 1},
      {"switch": 1, "array": "cts", "index": 5, "value": 1}
    ]
  }
}"#;

#[test]
fn sim_runs_scenario_green() {
    let prog = write_temp("sim-good.lucid", GOOD);
    let sc = write_temp("sim-good.sim.json", SIM_SCENARIO);
    let out = lucidc(&["sim", prog.to_str().unwrap(), sc.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("expectations: all met"), "{s}");
    assert!(s.contains("events: 3 processed"), "{s}");
}

#[test]
fn sim_engines_agree_and_json_is_structured() {
    let prog = write_temp("sim-json.lucid", GOOD);
    let sc = write_temp("sim-json.sim.json", SIM_SCENARIO);
    for engine in ["sequential", "sharded"] {
        let out = lucidc(&[
            "sim",
            &format!("--engine={engine}"),
            "--json",
            prog.to_str().unwrap(),
            sc.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "{engine}: {out:?}");
        let s = String::from_utf8_lossy(&out.stdout);
        let line = s.trim();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains(&format!("\"engine\":\"{engine}\"")), "{line}");
        assert!(line.contains("\"events_handled\":3"), "{line}");
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"events_per_sec\":"), "{line}");
    }
}

#[test]
fn sim_expectation_mismatch_exits_one_with_report() {
    let prog = write_temp("sim-miss.lucid", GOOD);
    let wrong = SIM_SCENARIO.replace("\"value\": 1", "\"value\": 7");
    let sc = write_temp("sim-miss.sim.json", &wrong);
    let out = lucidc(&["sim", prog.to_str().unwrap(), sc.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("FAILED"), "{s}");
    assert!(s.contains("expected 7, got 1"), "{s}");

    let out = lucidc(&[
        "sim",
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("\"ok\":false"), "{s}");
    assert!(s.contains("\"kind\":\"array\""), "{s}");
}

#[test]
fn sim_scenario_errors_exit_one_with_structure() {
    let prog = write_temp("sim-err.lucid", GOOD);
    // Malformed JSON.
    let bad = write_temp("sim-bad.sim.json", "{ not json ");
    let out = lucidc(&["sim", prog.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let s = String::from_utf8_lossy(&out.stderr);
    assert!(s.contains("not valid JSON"), "{s}");

    // Unknown event, structured path in the JSON form.
    let unk = write_temp(
        "sim-unk.sim.json",
        r#"{"events": [{"time_ns": 0, "switch": 1, "event": "zap", "args": []}]}"#,
    );
    let out = lucidc(&[
        "sim",
        "--json",
        prog.to_str().unwrap(),
        unk.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("\"kind\":\"validate\""), "{s}");
    assert!(s.contains("$.events[0].event"), "{s}");

    // Usage errors stay 2.
    let out = lucidc(&["sim", prog.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let out = lucidc(&["sim", "--workers=x", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sim_runtime_fault_still_emits_json() {
    let prog = write_temp("sim-oob.lucid", GOOD);
    // Index 100 is in range of the 32-bit event arg but out of bounds for
    // the 64-cell array: a data-dependent runtime fault, not a scenario
    // validation error.
    let sc = write_temp(
        "sim-oob.sim.json",
        r#"{"events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [100]}]}"#,
    );
    let out = lucidc(&[
        "sim",
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    let line = s.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"kind\":\"runtime\""), "{line}");
    assert!(line.contains("out of bounds"), "{line}");
}

#[test]
fn sim_exec_modes_agree_and_are_labeled() {
    let prog = write_temp("sim-exec.lucid", GOOD);
    let sc = write_temp(
        "sim-exec.sim.json",
        r#"{"name": "exec-matrix",
            "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [9]},
                       {"time_ns": 100, "switch": 1, "event": "pkt", "args": [9]}],
            "expect": {"handled": 2,
                       "arrays": [{"switch": 1, "array": "cts", "index": 9, "value": 2}]}}"#,
    );
    let mut digests = Vec::new();
    for exec in ["ast", "bytecode"] {
        let out = lucidc(&[
            "sim",
            &format!("--exec={exec}"),
            "--json",
            prog.to_str().unwrap(),
            sc.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "{exec}: {out:?}");
        let s = String::from_utf8_lossy(&out.stdout);
        assert!(s.contains(&format!("\"exec\":\"{exec}\"")), "{s}");
        assert!(s.contains("\"ok\":true"), "{s}");
        let digest = s
            .split("\"state_digest\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .expect("digest in report")
            .to_string();
        digests.push(digest);
    }
    assert_eq!(digests[0], digests[1], "executors must agree on state");

    // Unknown exec value is a usage error.
    let out = lucidc(&["sim", "--exec=jit", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sim_dump_bytecode_prints_listing() {
    let prog = write_temp("sim-dump.lucid", GOOD);
    // Program-only invocation dumps and exits 0.
    let out = lucidc(&["sim", "--dump-bytecode", prog.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("handler `pkt`"), "{s}");
    assert!(s.contains("halt"), "{s}");
    assert!(s.contains("; array g0 `cts`: 64 x 32-bit"), "{s}");

    // The CLI surface and the library agree on the listing.
    let lib =
        lucid_core::disassemble(&lucid_core::check::parse_and_check(GOOD).expect("GOOD checks"));
    assert_eq!(s, lib);

    // With a scenario, the dump precedes the run's report.
    let sc = write_temp(
        "sim-dump.sim.json",
        r#"{"events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [1]}]}"#,
    );
    let out = lucidc(&[
        "sim",
        "--dump-bytecode",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("handler `pkt`"), "{s}");
    assert!(s.contains("expectations: all met"), "{s}");

    // A broken program still reports diagnostics with exit 1.
    let bad = write_temp("sim-dump-bad.lucid", BAD_TWO_MEMOPS);
    let out = lucidc(&["sim", "--dump-bytecode", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // Under --json the listing moves to stderr; stdout stays one
    // machine-readable document.
    let out = lucidc(&[
        "sim",
        "--dump-bytecode",
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("handler `pkt`"),
        "{out:?}"
    );
}

#[test]
fn sim_verify_bytecode_gates_the_run() {
    let prog = write_temp("sim-verify.lucid", GOOD);
    let sc = write_temp("sim-verify.sim.json", SIM_SCENARIO);

    // A clean pipeline verifies silently and the scenario runs after it.
    let out = lucidc(&[
        "sim",
        "--verify-bytecode",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("expectations: all met"), "{s}");

    // Dump-only invocations accept the gate too, at every level.
    for opt in ["0", "1", "2"] {
        let out = lucidc(&[
            "sim",
            "--dump-bytecode",
            "--verify-bytecode",
            &format!("--opt={opt}"),
            prog.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "--opt={opt}: {out:?}");
    }

    // A broken program reports its diagnostics through the same path.
    let bad = write_temp("sim-verify-bad.lucid", BAD_TWO_MEMOPS);
    let out = lucidc(&[
        "sim",
        "--verify-bytecode",
        bad.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error[E03"),
        "{out:?}"
    );
}

#[test]
fn sim_runtime_fault_json_names_the_offending_event() {
    let prog = write_temp("sim-fault-at.lucid", GOOD);
    let sc = write_temp(
        "sim-fault-at.sim.json",
        r#"{"events": [{"time_ns": 70, "switch": 1, "event": "pkt", "args": [100]}]}"#,
    );
    let out = lucidc(&[
        "sim",
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let line = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(line.contains("\"kind\":\"runtime\""), "{line}");
    assert!(line.contains("\"kind\":\"index_out_of_bounds\""), "{line}");
    assert!(line.contains("\"time_ns\":70"), "{line}");
    assert!(line.contains("\"event\":\"pkt\""), "{line}");

    // Human-readable form names the event too.
    let out = lucidc(&["sim", prog.to_str().unwrap(), sc.to_str().unwrap()]);
    let s = String::from_utf8_lossy(&out.stderr);
    assert!(s.contains("`pkt` on switch 1 at 70ns"), "{s}");
}

#[test]
fn opt_flag_unifies_both_backends() {
    let prog = write_temp("opt-flag.lucid", GOOD);
    let sc = write_temp("opt-flag.sim.json", SIM_SCENARIO);
    let path = prog.to_str().unwrap();

    // One flag story: `--opt` works on the P4 side...
    let out = lucidc(&["compile", "--opt=0", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = lucidc(&["stages", "--opt=2", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // ...and on the sim side, where every level must agree on state.
    let mut digests = Vec::new();
    for opt in ["0", "1", "2"] {
        let out = lucidc(&[
            "sim",
            "--exec=bytecode",
            &format!("--opt={opt}"),
            "--json",
            path,
            sc.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "--opt={opt}: {out:?}");
        let s = String::from_utf8_lossy(&out.stdout);
        assert!(s.contains(&format!("\"opt\":{opt}")), "{s}");
        assert!(s.contains("\"ok\":true"), "{s}");
        let digest = s
            .split("\"state_digest\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .expect("digest in report")
            .to_string();
        digests.push(digest);
    }
    assert!(
        digests.iter().all(|d| d == &digests[0]),
        "opt levels disagree on state: {digests:?}"
    );

    // `--no-opt` is the alias for level 0.
    let out = lucidc(&[
        "sim",
        "--exec=bytecode",
        "--no-opt",
        "--json",
        path,
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"opt\":0"),
        "{out:?}"
    );

    // Conflicts and bad values are usage errors (exit 2), and the
    // usage text documents the unified flag.
    for args in [
        vec!["sim", "--no-opt", "--opt=2", "a", "b"],
        vec!["compile", "--no-opt", "--opt=1", "x.lucid"],
        vec!["sim", "--opt=3", "a", "b"],
        vec!["check", "--opt=1", "x.lucid"],
    ] {
        let out = lucidc(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--opt=0|1|2"), "usage text: {stderr}");
    }
}

#[test]
fn dump_bytecode_respects_opt_level() {
    // A program whose check cannot be elided (array smaller than the
    // index domain), so the optimized listing must show fused ops.
    let prog = write_temp(
        "opt-dump.lucid",
        r#"
        global small = new Array<<32>>(3);
        memop plus(int m, int x) { return m + x; }
        event pkt(int idx);
        handle pkt(int idx) { Array.setm(small, idx, plus, 1); }
        "#,
    );
    let path = prog.to_str().unwrap();

    let raw = lucidc(&["sim", "--dump-bytecode", "--opt=0", path]);
    assert_eq!(raw.status.code(), Some(0), "{raw:?}");
    let raw = String::from_utf8_lossy(&raw.stdout).to_string();
    assert!(raw.contains("; opt level 0"), "{raw}");
    assert!(
        raw.contains("check small") || raw.contains("check g0"),
        "{raw}"
    );
    assert!(!raw.contains("chk g0"), "{raw}");

    let opt = lucidc(&["sim", "--dump-bytecode", path]);
    assert_eq!(opt.status.code(), Some(0), "{opt:?}");
    let opt = String::from_utf8_lossy(&opt.stdout).to_string();
    assert!(opt.contains("; opt level 2"), "{opt}");
    assert!(opt.contains("chk g0"), "fused op missing:\n{opt}");
    assert!(
        opt.lines().count() <= raw.lines().count(),
        "optimized listing should not be longer"
    );

    // Dump-then-run without --opt renders at the *scenario's* level, so
    // the listing describes the bytecode that actually runs; an explicit
    // --opt still wins.
    let sc = write_temp(
        "opt-dump.sim.json",
        r#"{"exec": "bytecode", "opt": 1,
            "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [1]}]}"#,
    );
    let out = lucidc(&["sim", "--dump-bytecode", path, sc.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("; opt level 1"), "{s}");
    assert!(s.contains("(opt 1)"), "report runs the same level: {s}");
    let out = lucidc(&[
        "sim",
        "--dump-bytecode",
        "--opt=0",
        path,
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("; opt level 0"), "{s}");
    assert!(s.contains("(opt 0)"), "{s}");
}

#[test]
fn sim_generator_flags_drive_the_workload() {
    let prog = write_temp("sim-gen.lucid", GOOD);
    let sc = write_temp(
        "sim-gen.sim.json",
        r#"{"name": "gen",
            "seed": 1,
            "generators": [{"name": "src", "event": "pkt", "rate_eps": 1000000,
                            "count": 500, "args": [{"zipf": {"n": 64, "s": 1.1}}]}],
            "expect": {"handled": 500}}"#,
    );
    // As authored: expectations checked, per-generator counts reported.
    let out = lucidc(&[
        "sim",
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("\"name\":\"src\",\"injected\":500"), "{s}");
    assert!(s.contains("\"ok\":true"), "{s}");

    // --events scales the stream up lazily; --seed reshuffles it. Both
    // bypass the authored expectations (the run is no longer that run).
    let out = lucidc(&[
        "sim",
        "--events=2000",
        "--seed=9",
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("\"injected\":2000"), "{s}");
    assert!(s.contains("\"events_handled\":2000"), "{s}");

    // --gen replaces the scenario's generators (inline JSON form).
    let out = lucidc(&[
        "sim",
        "--gen={\"name\": \"inline\", \"event\": \"pkt\", \"interval_ns\": 50, \
         \"count\": 77, \"args\": [{\"uniform\": [0, 63]}]}",
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("\"name\":\"inline\",\"injected\":77"), "{s}");

    // --gen from a spec file.
    let spec = write_temp(
        "sim-gen.gen.json",
        r#"[{"name": "filed", "event": "pkt", "rate_eps": 500000,
             "count": 33, "args": [{"seq": 64}]}]"#,
    );
    let out = lucidc(&[
        "sim",
        &format!("--gen={}", spec.to_str().unwrap()),
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("\"name\":\"filed\",\"injected\":33"), "{s}");

    // A broken --gen spec is a structured diagnostic, exit 1.
    let out = lucidc(&[
        "sim",
        "--gen={\"event\": \"pkt\", \"rate_eps\": 10}",
        "--json",
        prog.to_str().unwrap(),
        sc.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("unbounded"), "{s}");

    // Bad numeric values are usage errors.
    let out = lucidc(&["sim", "--seed=x", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
    let out = lucidc(&["sim", "--events=x", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sim_no_trace_changes_nothing_observable() {
    let prog = write_temp("sim-notrace.lucid", GOOD);
    let sc = write_temp("sim-notrace.sim.json", SIM_SCENARIO);
    let mut reports = Vec::new();
    for flags in [&[][..], &["--no-trace"][..]] {
        let mut args = vec!["sim"];
        args.extend_from_slice(flags);
        args.extend_from_slice(&["--json", prog.to_str().unwrap(), sc.to_str().unwrap()]);
        let out = lucidc(&args);
        assert_eq!(out.status.code(), Some(0), "{flags:?}: {out:?}");
        let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
        assert!(s.contains("\"ok\":true"), "{s}");
        // Strip the two wall-clock fields; everything else must match
        // byte for byte — dropping the trace is not allowed to perturb
        // stats, expectations, metrics, or the state digest.
        let stable: String = s
            .split(',')
            .filter(|f| !f.contains("\"wall_ms\"") && !f.contains("\"events_per_sec\""))
            .collect::<Vec<_>>()
            .join(",");
        reports.push(stable);
    }
    assert_eq!(reports[0], reports[1], "--no-trace changed the report");

    // The flag is sim-only.
    let out = lucidc(&["check", "--no-trace", "x.lucid"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

// ----------------------------------------------------------------- serve

/// Drive `lucidc serve` over stdin/stdout: write the request lines,
/// close stdin, and collect one response line per request.
fn serve_session(lines: &[String]) -> Vec<String> {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_lucidc"))
        .arg("serve")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("lucidc serve spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    for line in lines {
        writeln!(stdin, "{line}").expect("request written");
    }
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(std::string::ToString::to_string)
        .collect()
}

#[test]
fn serve_runs_a_scripted_session_end_to_end() {
    let requests = vec![
        format!(
            "{{\"op\":\"open\",\"program\":{},\"scenario\":{}}}",
            json_quote(GOOD),
            json_quote(SIM_SCENARIO)
        ),
        r#"{"op":"advance","session":1,"to_ns":50}"#.to_string(),
        r#"{"op":"query","session":1,"array":{"switch":1,"name":"cts"}}"#.to_string(),
        r#"{"op":"drain","session":1}"#.to_string(),
        r#"{"op":"shutdown"}"#.to_string(),
    ];
    let replies = serve_session(&requests);
    assert_eq!(replies.len(), 5, "{replies:?}");
    assert!(
        replies[0].contains("\"ok\":true,\"session\":1"),
        "{}",
        replies[0]
    );
    // At t=50 only the first injection has run.
    assert!(replies[1].contains("\"processed\":1"), "{}", replies[1]);
    assert!(replies[2].contains("\"array\":["), "{}", replies[2]);
    // The drained session reports like a one-shot run: all three events,
    // expectations met.
    assert!(
        replies[3].contains("\"events_handled\":3"),
        "{}",
        replies[3]
    );
    assert!(replies[3].contains("\"ok\":true"), "{}", replies[3]);
    assert!(replies[4].contains("\"shutdown\":true"), "{}", replies[4]);
}

#[test]
fn serve_rejects_unknown_arguments() {
    let out = lucidc(&["serve", "--port=80"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown `serve` argument"), "{stderr}");
}

/// Quote a string as a JSON string literal (tests only need the common
/// escapes: the embedded program/scenario sources are ASCII).
fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
