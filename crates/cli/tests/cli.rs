//! End-to-end tests of the `lucidc` binary: flags, output artifacts,
//! JSON diagnostics, and the exit-code contract (0 success, 1 program
//! diagnostics, 2 usage/I-O errors).

use std::path::PathBuf;
use std::process::{Command, Output};

fn lucidc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lucidc"))
        .args(args)
        .output()
        .expect("lucidc runs")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("lucidc-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp source");
    path
}

const GOOD: &str = r#"
global cts = new Array<<32>>(64);
memop plus(int m, int x) { return m + x; }
event pkt(int idx);
handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
"#;

const BAD_TWO_MEMOPS: &str = r#"
memop one(int m, int x) { return m * x; }
memop two(int m, int x) { return x + x; }
"#;

#[test]
fn check_good_program_exits_zero() {
    let f = write_temp("good.lucid", GOOD);
    let out = lucidc(&["check", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok: 1 globals"), "{stdout}");
}

#[test]
fn diagnostics_exit_code_is_one() {
    let f = write_temp("bad.lucid", BAD_TWO_MEMOPS);
    let out = lucidc(&["check", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Both independent memop violations, rendered with codes and carets.
    assert!(stderr.matches("error[E03").count() >= 2, "{stderr}");
    assert!(stderr.contains("m * x"), "{stderr}");
}

#[test]
fn json_diagnostics_are_structured() {
    let f = write_temp("bad2.lucid", BAD_TWO_MEMOPS);
    let out = lucidc(&["check", "--json-diagnostics", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let json = stderr.trim();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(
        json.matches("\"severity\":\"error\"").count() >= 2,
        "{json}"
    );
    assert!(json.contains("\"code\":\"E03"), "{json}");
    assert!(json.contains("\"line\":"), "{json}");
}

#[test]
fn io_and_usage_errors_exit_two() {
    let out = lucidc(&["check", "/nonexistent/definitely-missing.lucid"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = lucidc(&["check"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = lucidc(&["compile", "--emit=wat", "x.lucid"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_subcommand_hints_nearest() {
    let out = lucidc(&["chek", "x.lucid"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand `chek`"), "{stderr}");
    assert!(stderr.contains("did you mean `check`?"), "{stderr}");
}

#[test]
fn emit_variants_produce_artifacts() {
    let f = write_temp("emit.lucid", GOOD);
    let path = f.to_str().unwrap();

    let ast = lucidc(&["compile", "--emit=ast", path]);
    assert_eq!(ast.status.code(), Some(0));
    let s = String::from_utf8_lossy(&ast.stdout);
    assert!(s.contains("handle pkt"), "{s}");

    let ir = lucidc(&["compile", "--emit=ir", path]);
    assert_eq!(ir.status.code(), Some(0));
    let s = String::from_utf8_lossy(&ir.stdout);
    assert!(
        s.contains("handler pkt") && s.contains("atomic tables"),
        "{s}"
    );

    let layout = lucidc(&["compile", "--emit=layout", path]);
    assert_eq!(layout.status.code(), Some(0));
    let s = String::from_utf8_lossy(&layout.stdout);
    assert!(s.contains("total stages:"), "{s}");

    let p4 = lucidc(&["compile", path]);
    assert_eq!(p4.status.code(), Some(0));
    let s = String::from_utf8_lossy(&p4.stdout);
    assert!(s.contains("RegisterAction"), "{s}");
}

#[test]
fn no_opt_and_target_flags_are_accepted() {
    let f = write_temp("flags.lucid", GOOD);
    let path = f.to_str().unwrap();
    let out = lucidc(&["stages", "--no-opt", "--target=pisa", path]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("total stages:"), "{s}");
}
