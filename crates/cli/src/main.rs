//! `lucidc` — command-line front end for the Lucid reproduction.
//!
//! ```text
//! lucidc check [OPTIONS] <file.lucid>      syntax + memop + effect checking
//! lucidc compile [OPTIONS] <file.lucid>    emit an artifact (default P4_16)
//! lucidc stages [OPTIONS] <file.lucid>     print the pipeline layout
//! lucidc sim [OPTIONS] <file.lucid> <scenario.sim.json>
//!                                          run a simulation scenario
//! lucidc sim --dump-bytecode <file.lucid>  print the compiled bytecode
//! lucidc serve [--socket=PATH]             persistent simulation service
//! lucidc apps                              list the bundled Figure 9 applications
//! lucidc app <key>                         dump a bundled app's Lucid source
//!
//! OPTIONS:
//!   --emit=ast|ir|layout|p4   artifact for `compile` (default p4)
//!   --target=tofino|pisa      pipeline model to compile against
//!   --opt=0|1|2               optimization level; one flag story for both
//!                             backends. `compile`/`stages`: 0 disables the
//!                             P4 IR clean-up pass, 1 and 2 enable it
//!                             (default). `sim`: the bytecode pipeline —
//!                             0 = raw lowering, 1 = peephole fusion,
//!                             2 = peephole + register allocation (default)
//!   --no-opt                  alias for --opt=0 (kept from the days when
//!                             only the P4 backend had an optimizer)
//!   --lint                    run the lint pass (`check`/`compile`): style
//!                             and dead-state warnings with stable W05xx
//!                             codes, reported like any other warnings
//!   --deny-lints              promote lint warnings to errors and exit 1
//!                             when any fire (implies --lint; CI gate)
//!   --json-diagnostics        report diagnostics as a JSON array on stderr
//!   --engine=sequential|sharded   override the scenario's engine (`sim`)
//!   --workers=N               sharded-engine worker threads (`sim`; 0 = cores)
//!   --exec=ast|bytecode       override the scenario's handler executor (`sim`)
//!   --seed=S                  override the scenario's workload seed (`sim`)
//!   --events=N                cap total generator-sourced injections (`sim`)
//!   --gen=<spec>              replace the scenario's generators (`sim`);
//!                             <spec> is inline JSON or a spec-file path.
//!                             Workload overrides (--seed/--events/--gen)
//!                             skip the scenario's authored expectations
//!   --dump-bytecode           print the program's bytecode listing (`sim`),
//!                             rendered at the `--opt` level (default 2, so
//!                             fused superinstructions and the post-regalloc
//!                             register frames show); with a scenario, dumps
//!                             and then runs it (under `--json` the listing
//!                             goes to stderr so stdout stays one JSON
//!                             document)
//!   --verify-bytecode         run the bytecode verifier over every handler
//!                             after every compiler pass before simulating
//!                             (`sim`); violations report with stable V0xxx
//!                             codes and exit 1
//!   --metrics[=json]          append the per-event-class latency table
//!                             (dispatch latency + queue residency
//!                             p50/p90/p99/p999 per event x switch) to the
//!                             `sim` report; `--metrics=json` prints the
//!                             metrics object alone as stdout's one JSON
//!                             document (conflicts with `--json`, which
//!                             already embeds it in the full report)
//!   --no-trace                skip retaining the per-event trace (`sim`);
//!                             stats, expectations, metrics, and the state
//!                             digest are unchanged — the run just stops
//!                             paying for a log nobody reads
//!   --json                    print the `sim` report as one JSON object
//!   --socket=PATH             serve over a Unix domain socket instead of
//!                             stdin/stdout (`serve`); one request per
//!                             line, sessions shared across connections
//! ```
//!
//! Exit codes: 0 success, 1 the program had diagnostics or the scenario
//! failed (bad scenario, runtime fault, or expectation mismatch), 2 usage
//! or I/O error.

#![forbid(unsafe_code)]

use lucid_core::{
    Build, BuildHost, Compiler, Engine, ExecMode, LayoutOptions, OptLevel, PipelineSpec, Scenario,
    ServeState, SimError, SimOptions,
};
use std::process::ExitCode;

const EXIT_DIAGNOSTICS: u8 = 1;
const EXIT_USAGE: u8 = 2;

const USAGE: &str = "usage: lucidc <check|compile|stages> [--emit=ast|ir|layout|p4] \
[--target=tofino|pisa] [--opt=0|1|2] [--no-opt] [--lint] [--deny-lints] \
[--json-diagnostics] <file.lucid>\n       \
lucidc sim [--engine=sequential|sharded] [--workers=N] [--exec=ast|bytecode] \
[--opt=0|1|2] [--seed=S] [--events=N] [--gen=<spec>] [--verify-bytecode] \
[--metrics[=json]] [--no-trace] [--json] <file.lucid> <scenario.sim.json>\n       \
lucidc sim --dump-bytecode [--opt=0|1|2] [--verify-bytecode] <file.lucid> \
[<scenario.sim.json>]\n       \
lucidc serve [--socket=PATH]\n       \
lucidc apps | app <key>";

const SUBCOMMANDS: &[&str] = &["check", "compile", "stages", "sim", "serve", "apps", "app"];

/// What `compile` should print.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Emit {
    Ast,
    Ir,
    Layout,
    P4,
}

/// Parsed command line for the file-taking subcommands.
struct Options {
    emit: Emit,
    target: PipelineSpec,
    optimize: bool,
    /// `--lint`: run the W05xx lint pass after a successful check.
    lint: bool,
    /// `--deny-lints`: promote lint warnings to errors (implies `--lint`).
    deny_lints: bool,
    json_diagnostics: bool,
    file: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    match cmd.as_str() {
        "check" | "compile" | "stages" => {
            let opts = match parse_options(cmd, &args[1..]) {
                Ok(o) => o,
                Err(msg) => {
                    eprintln!("error: {msg}\n{USAGE}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let src = match std::fs::read_to_string(&opts.file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", opts.file);
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let compiler = Compiler::new()
                .target(opts.target.clone())
                .layout(LayoutOptions::default())
                .optimize(opts.optimize);
            let mut build = compiler.build(&opts.file, &src);
            match cmd.as_str() {
                "check" => run_check(&mut build, &opts),
                "compile" => run_compile(&mut build, &opts),
                _ => run_stages(&mut build, &opts),
            }
        }
        "sim" => run_sim(&args[1..]),
        "serve" => run_serve(&args[1..]),
        "apps" => {
            for app in lucid_apps::all() {
                println!(
                    "{:<12} {:<36} {} Lucid lines",
                    app.key,
                    app.name,
                    app.lucid_loc()
                );
            }
            ExitCode::SUCCESS
        }
        "app" => {
            let Some(key) = args.get(1) else {
                eprintln!("error: missing <key>; try `lucidc apps`");
                return ExitCode::from(EXIT_USAGE);
            };
            match lucid_apps::by_key(key) {
                Some(app) => {
                    print!("{}", app.source);
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("error: unknown app `{key}`; try `lucidc apps`");
                    ExitCode::from(EXIT_USAGE)
                }
            }
        }
        unknown => {
            match nearest(unknown, SUBCOMMANDS) {
                Some(hint) => {
                    eprintln!("error: unknown subcommand `{unknown}` (did you mean `{hint}`?)");
                }
                None => eprintln!("error: unknown subcommand `{unknown}`"),
            }
            eprintln!("{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Parsed command line for `sim`.
struct SimArgs {
    engine: Option<Engine>,
    exec: Option<ExecMode>,
    /// `--opt=0|1|2` (or `--no-opt` = level 0): the bytecode pipeline.
    opt: Option<OptLevel>,
    /// Workload overrides: `--seed=S` reshuffles every generator stream,
    /// `--events=N` caps total generated injections.
    seed: Option<u64>,
    events: Option<u64>,
    /// `--gen=<file-or-inline-json>`: replace the scenario's generators.
    gen: Option<String>,
    json: bool,
    dump_bytecode: bool,
    /// `--verify-bytecode`: run the bytecode verifier after every compiler
    /// pass before dumping or simulating.
    verify_bytecode: bool,
    /// `--metrics[=json]`: how to surface the latency metrics.
    metrics: MetricsOut,
    /// `--no-trace`: skip recording the per-event trace.
    no_trace: bool,
    program: String,
    /// `None` only under `--dump-bytecode` (dump-only invocation).
    scenario: Option<String>,
}

/// How `sim` surfaces the per-event-class latency metrics. The `--json`
/// report always embeds them regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsOut {
    /// No extra output (the default).
    Off,
    /// `--metrics`: append the human-readable percentile table.
    Table,
    /// `--metrics=json`: print the metrics object as stdout's one JSON
    /// document instead of the human report.
    Json,
}

fn parse_sim_options(args: &[String]) -> Result<SimArgs, String> {
    let mut engine: Option<Engine> = None;
    let mut exec: Option<ExecMode> = None;
    let mut opt: Option<OptLevel> = None;
    let mut no_opt = false;
    let mut workers: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut events: Option<u64> = None;
    let mut gen: Option<String> = None;
    let mut json = false;
    let mut dump_bytecode = false;
    let mut verify_bytecode = false;
    let mut metrics = MetricsOut::Off;
    let mut no_trace = false;
    let mut files: Vec<String> = Vec::new();
    for a in args {
        if let Some(v) = a.strip_prefix("--engine=") {
            engine = Some(Engine::parse(v).ok_or_else(|| format!("unknown --engine value `{v}`"))?);
        } else if let Some(v) = a.strip_prefix("--exec=") {
            exec = Some(ExecMode::parse(v).ok_or_else(|| format!("unknown --exec value `{v}`"))?);
        } else if let Some(v) = a.strip_prefix("--opt=") {
            opt = Some(
                OptLevel::parse(v)
                    .ok_or_else(|| format!("unknown --opt value `{v}` (expected 0, 1, or 2)"))?,
            );
        } else if a == "--no-opt" {
            no_opt = true;
        } else if let Some(v) = a.strip_prefix("--workers=") {
            workers = Some(
                v.parse::<usize>()
                    .map_err(|_| format!("bad --workers value `{v}`"))?,
            );
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = Some(
                v.parse::<u64>()
                    .map_err(|_| format!("bad --seed value `{v}`"))?,
            );
        } else if let Some(v) = a.strip_prefix("--events=") {
            events = Some(
                v.parse::<u64>()
                    .map_err(|_| format!("bad --events value `{v}`"))?,
            );
        } else if let Some(v) = a.strip_prefix("--gen=") {
            gen = Some(v.to_string());
        } else if a == "--json" {
            json = true;
        } else if a == "--dump-bytecode" {
            dump_bytecode = true;
        } else if a == "--verify-bytecode" {
            verify_bytecode = true;
        } else if a == "--no-trace" {
            no_trace = true;
        } else if a == "--metrics" {
            metrics = MetricsOut::Table;
        } else if let Some(v) = a.strip_prefix("--metrics=") {
            if v != "json" {
                return Err(format!("unknown --metrics value `{v}` (expected `json`)"));
            }
            metrics = MetricsOut::Json;
        } else if a.starts_with("--") {
            return Err(format!("unknown option `{a}`"));
        } else {
            files.push(a.clone());
        }
    }
    if no_opt {
        // `--no-opt` is the historical spelling of `--opt=0`; an explicit
        // `--opt=` beside it is ambiguous at best.
        if opt.is_some() {
            return Err("pass either `--no-opt` or `--opt=N`, not both".to_string());
        }
        opt = Some(OptLevel::O0);
    }
    if metrics == MetricsOut::Json && json {
        // Both ask for stdout's one JSON document; the full `--json`
        // report already embeds the metrics object.
        return Err(
            "`--metrics=json` conflicts with `--json` (which already embeds metrics)".to_string(),
        );
    }
    if let Some(w) = workers {
        match &mut engine {
            Some(Engine::Sharded { workers, .. }) => *workers = w,
            Some(Engine::Sequential) => {
                return Err("`--workers` only applies to `--engine=sharded`".to_string());
            }
            None => {
                engine = Some(Engine::Sharded {
                    workers: w,
                    epoch_ns: 0,
                });
            }
        }
    }
    let (program, scenario) = match files.as_slice() {
        [program, scenario] => (program.clone(), Some(scenario.clone())),
        [program] if dump_bytecode => (program.clone(), None),
        _ => {
            return Err(if dump_bytecode {
                "`sim --dump-bytecode` wants <file.lucid> [<scenario.sim.json>]".to_string()
            } else {
                "`sim` wants exactly <file.lucid> <scenario.sim.json>".to_string()
            })
        }
    };
    Ok(SimArgs {
        engine,
        exec,
        opt,
        seed,
        events,
        gen,
        json,
        dump_bytecode,
        verify_bytecode,
        metrics,
        no_trace,
        program,
        scenario,
    })
}

fn run_sim(args: &[String]) -> ExitCode {
    let opts = match parse_sim_options(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let src = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.program);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut build = Compiler::new().build(&opts.program, &src);
    // Dump-only invocation: no scenario to consult, so `--opt` (or the
    // default level) picks the listing.
    if opts.dump_bytecode && opts.scenario.is_none() {
        let level = opts.opt.unwrap_or_default();
        if opts.verify_bytecode {
            if let Err(code) = verify_listing(&mut build, level, opts.json) {
                return code;
            }
        }
        return match dump_listing(&mut build, level, opts.json) {
            Ok(()) => ExitCode::SUCCESS,
            Err(code) => code,
        };
    }
    let scenario_path = opts.scenario.as_deref().expect("checked by parser");
    let sc_text = match std::fs::read_to_string(scenario_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {scenario_path}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut scenario = match Scenario::from_json(&sc_text) {
        Ok(sc) => sc,
        Err(e) => {
            if opts.json {
                println!("{}", e.to_json());
            } else {
                eprintln!("error in {scenario_path}: {e}");
            }
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    };
    // The verifier runs at the level the simulation will actually use, so
    // a clean report vouches for exactly the code about to execute.
    if opts.verify_bytecode {
        if let Err(code) = verify_listing(&mut build, opts.opt.unwrap_or(scenario.opt), opts.json) {
            return code;
        }
    }
    // Dump-then-run: without an explicit `--opt`, render the listing at
    // the scenario's own level so the dump describes the bytecode that
    // actually runs below.
    if opts.dump_bytecode {
        if let Err(code) = dump_listing(&mut build, opts.opt.unwrap_or(scenario.opt), opts.json) {
            return code;
        }
    }
    if let Some(spec) = &opts.gen {
        // `--gen` takes inline JSON (starts with `{` or `[`) or a path to
        // a spec file; the parsed generators replace the scenario's own.
        let text = if spec.trim_start().starts_with(['{', '[']) {
            spec.clone()
        } else {
            match std::fs::read_to_string(spec) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read --gen spec {spec}: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        };
        match Scenario::parse_generators(&text) {
            Ok(gens) => {
                scenario.generators = gens;
                // The authored expectations describe the authored
                // workload; a replaced one invalidates them (mirrors the
                // --seed/--events behavior inside the runner).
                scenario.expect = Default::default();
            }
            Err(e) => {
                if opts.json {
                    println!("{}", e.to_json());
                } else {
                    eprintln!("error in --gen spec: {e}");
                }
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
        }
    }
    let options = SimOptions {
        engine: opts.engine,
        exec: opts.exec,
        opt: opts.opt,
        // `--workers` is folded into the engine override at parse time.
        workers: None,
        seed: opts.seed,
        events: opts.events,
        // The trace stays on unless `--no-trace` sheds it; either way
        // stats, expectations, and the state digest are unchanged.
        record_trace: opts.no_trace.then_some(false),
    };
    match build.interp(&scenario, &options) {
        Ok(report) => {
            if opts.json {
                println!("{}", report.to_json());
            } else if opts.metrics == MetricsOut::Json {
                println!("{}", report.metrics.to_json());
            } else {
                print!("{}", report.render());
                if opts.metrics == MetricsOut::Table {
                    print!("{}", report.metrics.render());
                }
            }
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_DIAGNOSTICS)
            }
        }
        Err(SimError::Diagnostics(_)) => {
            if opts.json {
                // Keep stdout a single JSON document; the program's own
                // diagnostics go to stderr as JSON too.
                println!(
                    "{{\"kind\":\"diagnostics\",\"msg\":{}}}",
                    json_str("the program has diagnostics (see stderr)")
                );
                eprintln!("{}", build.diagnostics_json());
            } else {
                eprintln!("{}", build.render_diagnostics());
            }
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
        Err(SimError::Scenario(e)) => {
            if opts.json {
                println!("{}", e.to_json());
            } else {
                eprintln!("error in {scenario_path}: {e}");
            }
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
        Err(SimError::Runtime(e)) => {
            if opts.json {
                // The fault carries the offending event's key (time,
                // switch, name, origin) so tooling can point at it.
                println!("{{\"kind\":\"runtime\",\"fault\":{}}}", e.to_json());
            } else {
                eprintln!("runtime fault: {e}");
            }
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
        // Snapshot and swap verbs exist only under `serve`; a one-shot
        // run never exercises them, but the match stays honest.
        Err(e @ (SimError::Snapshot(_) | SimError::Swap(_))) => {
            if opts.json {
                println!(
                    "{{\"kind\":\"service\",\"msg\":{}}}",
                    json_str(&e.to_string())
                );
            } else {
                eprintln!("error: {e}");
            }
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
    }
}

/// `lucidc serve`: a persistent simulation service. Requests are
/// line-delimited JSON objects (see docs/serve-protocol.md); the daemon
/// owns compiled programs and live [`lucid_core::SimSession`]s, so a
/// client can ingest events, advance time, snapshot, restore, and
/// hot-swap programs without paying a re-parse per step. Default
/// transport is stdin/stdout; `--socket=PATH` binds a Unix domain socket
/// shared across connections instead.
fn run_serve(args: &[String]) -> ExitCode {
    let mut socket: Option<String> = None;
    for a in args {
        if let Some(v) = a.strip_prefix("--socket=") {
            socket = Some(v.to_string());
        } else {
            eprintln!("error: unknown `serve` argument `{a}`\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    }
    let host = BuildHost::new(Compiler::new());
    let result = match socket {
        Some(path) => {
            lucid_core::interp::serve::socket::serve_unix(std::path::Path::new(&path), host)
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut host = host;
            lucid_core::serve_lines(
                &mut ServeState::new(),
                &mut host,
                stdin.lock(),
                stdout.lock(),
            )
            .map(|_| ())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve transport failed: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Quote and escape one JSON string value.
fn json_str(s: &str) -> String {
    format!("\"{}\"", lucid_core::json_escape(s))
}

/// Run the bytecode verifier at `level` (`sim --verify-bytecode`). Clean
/// handlers are silent — the verifier is a gate, not a report. Violations
/// render as V0xxx diagnostics on stderr (JSON under `--json`, with a
/// one-document stdout marker) and yield exit 1.
fn verify_listing(build: &mut Build, level: OptLevel, json: bool) -> Result<(), ExitCode> {
    let emit_program_diags = |build: &Build| {
        if json {
            println!(
                "{{\"kind\":\"diagnostics\",\"msg\":{}}}",
                json_str("the program has diagnostics (see stderr)")
            );
            eprintln!("{}", build.diagnostics_json());
        } else {
            eprintln!("{}", build.render_diagnostics());
        }
        Err(ExitCode::from(EXIT_DIAGNOSTICS))
    };
    match build.verify_bytecode(level) {
        Ok(violations) if violations.is_empty() => Ok(()),
        Ok(violations) => {
            let ds = lucid_core::interp::violations_to_diagnostics(&violations);
            if json {
                println!(
                    "{{\"kind\":\"diagnostics\",\"msg\":{}}}",
                    json_str("the bytecode verifier found violations (see stderr)")
                );
                eprintln!("{}", ds.to_json(build.source_map()));
            } else {
                eprintln!("{}", ds.render(build.source_map()));
            }
            Err(ExitCode::from(EXIT_DIAGNOSTICS))
        }
        Err(_) => emit_program_diags(build),
    }
}

/// Print the bytecode listing at `level` (`sim --dump-bytecode`). Under
/// `--json`, stdout stays one machine-readable document, so the listing
/// goes to stderr; a program with diagnostics reports them in the same
/// shape as the run path and yields the exit code to return.
fn dump_listing(build: &mut Build, level: OptLevel, json: bool) -> Result<(), ExitCode> {
    match build.disassemble_opt(level) {
        Ok(listing) if json => {
            eprint!("{listing}");
            Ok(())
        }
        Ok(listing) => {
            print!("{listing}");
            Ok(())
        }
        Err(_) => {
            if json {
                println!(
                    "{{\"kind\":\"diagnostics\",\"msg\":{}}}",
                    json_str("the program has diagnostics (see stderr)")
                );
                eprintln!("{}", build.diagnostics_json());
            } else {
                eprintln!("{}", build.render_diagnostics());
            }
            Err(ExitCode::from(EXIT_DIAGNOSTICS))
        }
    }
}

fn parse_options(cmd: &str, args: &[String]) -> Result<Options, String> {
    let mut emit = Emit::P4;
    let mut target = PipelineSpec::tofino();
    let mut opt: Option<OptLevel> = None;
    let mut no_opt = false;
    let mut lint = false;
    let mut deny_lints = false;
    let mut json_diagnostics = false;
    let mut file = None;
    for a in args {
        if let Some(v) = a.strip_prefix("--emit=") {
            // Silently ignoring a flag the subcommand cannot honor would
            // mislead; reject it instead.
            if cmd != "compile" {
                return Err(format!("`--emit` only applies to `compile`, not `{cmd}`"));
            }
            emit = match v {
                "ast" => Emit::Ast,
                "ir" => Emit::Ir,
                "layout" => Emit::Layout,
                "p4" => Emit::P4,
                other => return Err(format!("unknown --emit value `{other}`")),
            };
        } else if let Some(v) = a.strip_prefix("--target=") {
            if cmd == "check" {
                return Err(
                    "`--target` has no effect on `check` (checking is target-independent)"
                        .to_string(),
                );
            }
            target = match v {
                "tofino" => PipelineSpec::tofino(),
                "pisa" => PipelineSpec::idealized_pisa(),
                other => return Err(format!("unknown --target value `{other}`")),
            };
        } else if a == "--no-opt" {
            if cmd == "check" {
                return Err(
                    "`--no-opt` has no effect on `check` (the backend does not run)".to_string(),
                );
            }
            no_opt = true;
        } else if let Some(v) = a.strip_prefix("--opt=") {
            if cmd == "check" {
                return Err(
                    "`--opt` has no effect on `check` (the backend does not run)".to_string(),
                );
            }
            opt = Some(
                OptLevel::parse(v)
                    .ok_or_else(|| format!("unknown --opt value `{v}` (expected 0, 1, or 2)"))?,
            );
        } else if a == "--lint" || a == "--deny-lints" {
            // Linting runs on the checked program, which `stages` also
            // produces — but its output is a layout report, not a
            // diagnostic listing, so keep the flag where the output
            // channel makes sense.
            if cmd == "stages" {
                return Err(format!("`{a}` only applies to `check` and `compile`"));
            }
            lint = true;
            deny_lints |= a == "--deny-lints";
        } else if a == "--json-diagnostics" {
            json_diagnostics = true;
        } else if a.starts_with("--") {
            return Err(format!("unknown option `{a}`"));
        } else if file.is_some() {
            return Err(format!("unexpected argument `{a}`"));
        } else {
            file = Some(a.clone());
        }
    }
    if no_opt && opt.is_some() {
        return Err("pass either `--no-opt` or `--opt=N`, not both".to_string());
    }
    // One flag story across backends: level 0 disables the P4 IR
    // clean-up pass; 1 and 2 (the default) enable it. The finer-grained
    // distinction only exists in the interpreter's bytecode pipeline.
    let optimize = !no_opt && opt.unwrap_or_default() != OptLevel::O0;
    let file = file.ok_or_else(|| "missing <file.lucid>".to_string())?;
    Ok(Options {
        emit,
        target,
        optimize,
        lint,
        deny_lints,
        json_diagnostics,
        file,
    })
}

/// Report a failed build on stderr (rendered or JSON) and exit 1.
fn diag_failure(build: &Build, opts: &Options) -> ExitCode {
    if opts.json_diagnostics {
        eprintln!("{}", build.diagnostics_json());
    } else {
        eprintln!("{}", build.render_diagnostics());
    }
    ExitCode::from(EXIT_DIAGNOSTICS)
}

fn run_check(build: &mut Build, opts: &Options) -> ExitCode {
    match build.checked() {
        Ok(p) => {
            println!(
                "ok: {} globals, {} events, {} handlers, {} memops",
                p.info.globals.len(),
                p.info.events.len(),
                p.info.handlers.len(),
                p.memops.len()
            );
            emit_success_warnings(build, opts)
        }
        Err(_) => diag_failure(build, opts),
    }
}

fn run_compile(build: &mut Build, opts: &Options) -> ExitCode {
    let out = match opts.emit {
        Emit::Ast => build
            .ast()
            .map(lucid_core::frontend::pretty::program)
            .map_err(|_| ()),
        Emit::Ir => build
            .handlers()
            .map(|handlers| {
                let mut s = String::new();
                for h in handlers {
                    s.push_str(&format!(
                        "handler {} (event {}), {} atomic tables, unoptimized depth {}\n",
                        h.name,
                        h.event_id,
                        h.tables.len(),
                        h.unoptimized_depth
                    ));
                    for t in &h.tables {
                        s.push_str(&format!(
                            "  t{:<3} guard={:?} op={:?}\n",
                            t.id, t.guard, t.op
                        ));
                    }
                }
                s
            })
            .map_err(|_| ()),
        Emit::Layout => build.layout().map(render_layout).map_err(|_| ()),
        Emit::P4 => build.p4().map(|p4| p4.source.clone()).map_err(|_| ()),
    };
    match out {
        Ok(text) => {
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
            // The human stats line stays off stderr under --json-diagnostics
            // so that stream parses as one JSON document.
            if opts.emit == Emit::P4 && !opts.json_diagnostics {
                if let (Ok(loc), Ok(l)) = (
                    build.p4().map(|p| p.loc.total()),
                    build
                        .layout()
                        .map(|l| (l.total_stages, l.unoptimized_stages)),
                ) {
                    eprintln!("stages: {} (unoptimized {}), p4 lines: {}", l.0, l.1, loc);
                }
            }
            emit_success_warnings(build, opts)
        }
        Err(()) => diag_failure(build, opts),
    }
}

fn run_stages(build: &mut Build, opts: &Options) -> ExitCode {
    match build.layout() {
        Ok(_) => {
            let text = render_layout(build.layout().expect("just succeeded"));
            print!("{text}");
            emit_success_warnings(build, opts)
        }
        Err(_) => diag_failure(build, opts),
    }
}

/// On success, report accumulated warnings — plus the lint pass under
/// `--lint` — on stderr, as a JSON array under `--json-diagnostics` or
/// rendered rustc-style otherwise, so both output modes carry the same
/// information from every subcommand. `--deny-lints` promotes the lint
/// warnings to errors, and any error in the combined set exits 1.
fn emit_success_warnings(build: &mut Build, opts: &Options) -> ExitCode {
    let mut all = build.diagnostics();
    if opts.lint {
        let mut lints = match build.lint() {
            Ok(ds) => ds.clone(),
            // Unreachable after a successful stage, but keep the honest
            // shape: a failed check already reported via `diag_failure`.
            Err(ds) => ds,
        };
        if opts.deny_lints {
            lints.promote_warnings_to_errors();
        }
        all.extend(lints);
    }
    if opts.json_diagnostics {
        eprintln!("{}", all.to_json(build.source_map()));
    } else if !all.is_empty() {
        eprintln!("{}", all.render(build.source_map()));
    }
    if all.has_errors() {
        ExitCode::from(EXIT_DIAGNOSTICS)
    } else {
        ExitCode::SUCCESS
    }
}

fn render_layout(l: &lucid_core::Layout) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "total stages: {} (dispatcher included)\n",
        l.total_stages
    ));
    out.push_str(&format!("unoptimized:  {}\n", l.unoptimized_stages));
    out.push_str(&format!("stage ratio:  {:.2}\n", l.stage_ratio()));
    for (i, st) in l.stage_stats.iter().enumerate() {
        if st.tables == 0 {
            continue;
        }
        out.push_str(&format!(
            "stage {i:>2}: {:>2} tables ({} merged), {} sALUs, {} action ops\n",
            st.tables, st.merged_tables, st.salus, st.action_ops
        ));
    }
    out
}

/// Nearest subcommand by edit distance, for typo hints. Only suggests when
/// the distance is small relative to the input.
fn nearest<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let (best, dist) = candidates
        .iter()
        .map(|c| (*c, edit_distance(input, c)))
        .min_by_key(|(_, d)| *d)?;
    (dist <= 1 + input.len() / 3).then_some(best)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        cur[0] = i;
        for j in 1..=b.len() {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("check", "check"), 0);
        assert_eq!(edit_distance("chek", "check"), 1);
        assert_eq!(edit_distance("comple", "compile"), 1);
    }

    #[test]
    fn nearest_suggests_close_matches_only() {
        assert_eq!(nearest("chek", SUBCOMMANDS), Some("check"));
        assert_eq!(nearest("stgaes", SUBCOMMANDS), Some("stages"));
        assert_eq!(nearest("frobnicate", SUBCOMMANDS), None);
    }

    #[test]
    fn options_parse() {
        let o = parse_options(
            "compile",
            &[
                "--emit=layout".into(),
                "--target=pisa".into(),
                "--no-opt".into(),
                "f.lucid".into(),
            ],
        )
        .unwrap();
        assert_eq!(o.emit, Emit::Layout);
        assert_eq!(o.target.front_panel_ports, 10);
        assert!(!o.optimize);
        assert_eq!(o.file, "f.lucid");
        assert!(parse_options("compile", &["--emit=wat".into(), "f".into()]).is_err());
        assert!(parse_options("compile", &[]).is_err());
    }

    #[test]
    fn opt_levels_unify_with_no_opt() {
        // `--opt=0` is `--no-opt`; 1 and 2 leave the backend pass on.
        let o = parse_options("compile", &["--opt=0".into(), "f".into()]).unwrap();
        assert!(!o.optimize);
        for lvl in ["1", "2"] {
            let o = parse_options("compile", &[format!("--opt={lvl}"), "f".into()]).unwrap();
            assert!(o.optimize, "--opt={lvl}");
        }
        let o = parse_options("compile", &["f".into()]).unwrap();
        assert!(o.optimize, "default is optimized");
        // The two spellings conflict rather than silently racing.
        assert!(parse_options(
            "compile",
            &["--no-opt".into(), "--opt=2".into(), "f".into()]
        )
        .is_err());
        assert!(parse_options("compile", &["--opt=3".into(), "f".into()]).is_err());
        assert!(parse_options("check", &["--opt=1".into(), "f".into()]).is_err());

        // The sim side: same flag, the bytecode pipeline's level.
        let o = parse_sim_options(&["--opt=1".into(), "p".into(), "s".into()]).unwrap();
        assert_eq!(o.opt, Some(OptLevel::O1));
        let o = parse_sim_options(&["--no-opt".into(), "p".into(), "s".into()]).unwrap();
        assert_eq!(o.opt, Some(OptLevel::O0));
        let o = parse_sim_options(&["p".into(), "s".into()]).unwrap();
        assert_eq!(o.opt, None, "no override: the scenario decides");
        assert!(parse_sim_options(&["--opt=9".into(), "p".into(), "s".into()]).is_err());
        assert!(
            parse_sim_options(&["--no-opt".into(), "--opt=2".into(), "p".into(), "s".into()])
                .is_err()
        );
    }

    #[test]
    fn sim_options_parse() {
        let o = parse_sim_options(&[
            "--engine=sharded".into(),
            "--workers=3".into(),
            "--exec=bytecode".into(),
            "--json".into(),
            "p.lucid".into(),
            "s.sim.json".into(),
        ])
        .unwrap();
        assert_eq!(
            o.engine,
            Some(Engine::Sharded {
                workers: 3,
                epoch_ns: 0
            })
        );
        assert_eq!(o.exec, Some(ExecMode::Bytecode));
        assert!(o.json);
        assert_eq!(
            (o.program.as_str(), o.scenario.as_deref()),
            ("p.lucid", Some("s.sim.json"))
        );
        // --workers alone implies the sharded engine.
        let o = parse_sim_options(&["--workers=2".into(), "p".into(), "s".into()]).unwrap();
        assert!(matches!(o.engine, Some(Engine::Sharded { workers: 2, .. })));
        // Workload knobs parse and default to None.
        let o = parse_sim_options(&[
            "--seed=17".into(),
            "--events=1000000".into(),
            "--gen=spec.json".into(),
            "p".into(),
            "s".into(),
        ])
        .unwrap();
        assert_eq!(o.seed, Some(17));
        assert_eq!(o.events, Some(1_000_000));
        assert_eq!(o.gen.as_deref(), Some("spec.json"));
        let o = parse_sim_options(&["p".into(), "s".into()]).unwrap();
        assert_eq!((o.seed, o.events, o.gen), (None, None, None));
        assert!(parse_sim_options(&["--seed=zz".into(), "p".into(), "s".into()]).is_err());
        assert!(parse_sim_options(&["--events=-1".into(), "p".into(), "s".into()]).is_err());
        assert!(parse_sim_options(&["p".into()]).is_err());
        assert!(parse_sim_options(&["--engine=warp".into(), "p".into(), "s".into()]).is_err());
        assert!(parse_sim_options(&["--exec=jit".into(), "p".into(), "s".into()]).is_err());
        assert!(parse_sim_options(&[
            "--engine=sequential".into(),
            "--workers=2".into(),
            "p".into(),
            "s".into()
        ])
        .is_err());
    }

    #[test]
    fn lint_flags_parse() {
        let o = parse_options("check", &["--lint".into(), "f".into()]).unwrap();
        assert!(o.lint && !o.deny_lints);
        // --deny-lints implies the lint pass itself.
        let o = parse_options("compile", &["--deny-lints".into(), "f".into()]).unwrap();
        assert!(o.lint && o.deny_lints);
        let o = parse_options("check", &["f".into()]).unwrap();
        assert!(!o.lint && !o.deny_lints);
        assert!(parse_options("stages", &["--lint".into(), "f".into()]).is_err());
        assert!(parse_options("stages", &["--deny-lints".into(), "f".into()]).is_err());
    }

    #[test]
    fn no_trace_flag_parses() {
        let o = parse_sim_options(&["--no-trace".into(), "p".into(), "s".into()]).unwrap();
        assert!(o.no_trace);
        let o = parse_sim_options(&["p".into(), "s".into()]).unwrap();
        assert!(!o.no_trace, "the trace is retained by default");
        // Composes with the other sim flags.
        let o = parse_sim_options(&[
            "--no-trace".into(),
            "--json".into(),
            "--engine=sharded".into(),
            "p".into(),
            "s".into(),
        ])
        .unwrap();
        assert!(o.no_trace && o.json);
    }

    #[test]
    fn verify_bytecode_flag_parses() {
        let o = parse_sim_options(&["--verify-bytecode".into(), "p".into(), "s".into()]).unwrap();
        assert!(o.verify_bytecode);
        let o = parse_sim_options(&["p".into(), "s".into()]).unwrap();
        assert!(!o.verify_bytecode);
        // Composes with a dump-only invocation.
        let o = parse_sim_options(&[
            "--dump-bytecode".into(),
            "--verify-bytecode".into(),
            "p".into(),
        ])
        .unwrap();
        assert!(o.dump_bytecode && o.verify_bytecode);
    }

    #[test]
    fn metrics_flag_parses() {
        let o = parse_sim_options(&["p".into(), "s".into()]).unwrap();
        assert_eq!(o.metrics, MetricsOut::Off);
        let o = parse_sim_options(&["--metrics".into(), "p".into(), "s".into()]).unwrap();
        assert_eq!(o.metrics, MetricsOut::Table);
        let o = parse_sim_options(&["--metrics=json".into(), "p".into(), "s".into()]).unwrap();
        assert_eq!(o.metrics, MetricsOut::Json);
        // The plain table composes with --json (the report embeds the
        // metrics object anyway); the JSON-only form conflicts with it.
        let o = parse_sim_options(&["--metrics".into(), "--json".into(), "p".into(), "s".into()])
            .unwrap();
        assert_eq!((o.metrics, o.json), (MetricsOut::Table, true));
        assert!(parse_sim_options(&[
            "--metrics=json".into(),
            "--json".into(),
            "p".into(),
            "s".into()
        ])
        .is_err());
        assert!(parse_sim_options(&["--metrics=yaml".into(), "p".into(), "s".into()]).is_err());
    }

    #[test]
    fn dump_bytecode_allows_program_only() {
        let o = parse_sim_options(&["--dump-bytecode".into(), "p.lucid".into()]).unwrap();
        assert!(o.dump_bytecode);
        assert_eq!(o.scenario, None);
        let o = parse_sim_options(&["--dump-bytecode".into(), "p".into(), "s".into()]).unwrap();
        assert_eq!(o.scenario.as_deref(), Some("s"));
        assert!(parse_sim_options(&["--dump-bytecode".into()]).is_err());
    }

    #[test]
    fn inapplicable_flags_rejected_per_subcommand() {
        assert!(parse_options("check", &["--emit=ast".into(), "f".into()]).is_err());
        assert!(parse_options("stages", &["--emit=ast".into(), "f".into()]).is_err());
        assert!(parse_options("check", &["--no-opt".into(), "f".into()]).is_err());
        assert!(parse_options("check", &["--target=pisa".into(), "f".into()]).is_err());
        // stages legitimately uses the backend: target and opt apply.
        assert!(parse_options(
            "stages",
            &["--no-opt".into(), "--target=pisa".into(), "f".into()]
        )
        .is_ok());
        assert!(parse_options("check", &["--json-diagnostics".into(), "f".into()]).is_ok());
    }
}
