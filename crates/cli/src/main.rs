//! `lucidc` — command-line front end for the Lucid reproduction.
//!
//! ```text
//! lucidc check <file.lucid>          syntax + memop + effect checking
//! lucidc compile <file.lucid>        emit P4_16 to stdout, stats to stderr
//! lucidc stages <file.lucid>         print the pipeline layout
//! lucidc apps                        list the bundled Figure 9 applications
//! lucidc app <key>                   dump a bundled app's Lucid source
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, file] if cmd == "check" => with_source(file, |name, src| {
            match lucid_core::check_source(name, src) {
                Ok(p) => {
                    println!(
                        "ok: {} globals, {} events, {} handlers, {} memops",
                        p.info.globals.len(),
                        p.info.events.len(),
                        p.info.handlers.len(),
                        p.memops.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }),
        [cmd, file] if cmd == "compile" => with_source(file, |name, src| {
            match lucid_core::compile_source(name, src) {
                Ok(art) => {
                    println!("{}", art.compiled.p4.source);
                    eprintln!(
                        "stages: {} (unoptimized {}), p4 lines: {}",
                        art.compiled.layout.total_stages,
                        art.compiled.layout.unoptimized_stages,
                        art.compiled.p4.loc.total()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }),
        [cmd, file] if cmd == "stages" => with_source(file, |name, src| {
            match lucid_core::compile_source(name, src) {
                Ok(art) => {
                    let l = &art.compiled.layout;
                    println!("total stages: {} (dispatcher included)", l.total_stages);
                    println!("unoptimized:  {}", l.unoptimized_stages);
                    println!("stage ratio:  {:.2}", l.stage_ratio());
                    for (i, st) in l.stage_stats.iter().enumerate() {
                        if st.tables == 0 {
                            continue;
                        }
                        println!(
                            "stage {i:>2}: {:>2} tables ({} merged), {} sALUs, {} action ops",
                            st.tables, st.merged_tables, st.salus, st.action_ops
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }),
        [cmd] if cmd == "apps" => {
            for app in lucid_apps::all() {
                println!("{:<12} {:<36} {} Lucid lines", app.key, app.name, app.lucid_loc());
            }
            ExitCode::SUCCESS
        }
        [cmd, key] if cmd == "app" => match lucid_apps::by_key(key) {
            Some(app) => {
                print!("{}", app.source);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown app `{key}`; try `lucidc apps`");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: lucidc <check|compile|stages> <file.lucid>\n       lucidc apps | app <key>"
            );
            ExitCode::FAILURE
        }
    }
}

fn with_source(path: &str, f: impl FnOnce(&str, &str) -> ExitCode) -> ExitCode {
    match std::fs::read_to_string(path) {
        Ok(src) => f(path, &src),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
