//! Table placement: the §6.2 optimizations.
//!
//! Input: each handler's atomic tables (with branch conditions already
//! inlined as guards). This module:
//!
//! 1. builds the **data-flow graph** among each handler's tables
//!    (read-after-write is a strict stage ordering; write-after-read and
//!    non-exclusive write-after-write order placement without forcing a
//!    new stage where the PISA PHV semantics permit it);
//! 2. runs the paper's **greedy placement**: walking tables topologically,
//!    each is placed in the earliest stage that satisfies its data-flow
//!    constraints, its register array's fixed stage, and the stage's
//!    resource budget ([`PipelineSpec`]); register arrays are pinned to the
//!    stage of their first placement — with an outer fixpoint that bumps an
//!    array's floor and retries when a later handler proves it was pinned
//!    too early;
//! 3. **merges** co-staged tables with compatible match keys into
//!    multi-action tables, which is what makes the per-stage table budget
//!    realistic (Figure 8).
//!
//! The module also computes the *unoptimized* stage count (atomic tables on
//! the longest control path, branch tables included — Figure 6(1)) so the
//! Figure 12 ratio can be reproduced, and per-stage ALU-op counts for
//! Figure 13.

use crate::ir::{AtomicTable, HandlerIr};
use lucid_check::{CheckedProgram, GlobalId};
use lucid_frontend::diag::{Diagnostic, Diagnostics};
use lucid_tofino::spec::PipelineSpec;
use std::collections::HashMap;

/// Knobs for ablating the optimizations (DESIGN.md §4).
#[derive(Debug, Clone, Copy)]
pub struct LayoutOptions {
    /// §6.2 "Rearranging tables": when false, every table additionally
    /// depends on its program-order predecessor, serializing the layout.
    pub rearrange: bool,
    /// Maximum distinct match-key variables a merged table may carry.
    pub merge_key_budget: usize,
    /// Extra stages consumed by the event scheduler's dispatcher in
    /// ingress (static code shared by all Lucid programs).
    pub dispatcher_stages: usize,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            rearrange: true,
            merge_key_budget: 4,
            dispatcher_stages: 1,
        }
    }
}

/// A placed table: which handler, which table id, which stage.
#[derive(Debug, Clone)]
pub struct Placement {
    pub handler: String,
    pub table: usize,
    pub stage: usize,
}

/// Per-stage occupancy after placement and merging.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    /// Atomic tables placed here.
    pub tables: usize,
    /// Merged logical tables (what counts against the per-stage budget).
    pub merged_tables: usize,
    /// Stateful-ALU instructions.
    pub salus: usize,
    /// Plain action-ALU operations.
    pub action_ops: usize,
    /// Register arrays resident in this stage.
    pub arrays: Vec<GlobalId>,
}

impl StageStats {
    /// Total ALU instructions (stateful + action) — the Figure 13 metric.
    pub fn alu_ops(&self) -> usize {
        self.salus + self.action_ops
    }
}

/// The result of compiling a whole program onto the pipeline.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Stages used by handler logic (excludes `dispatcher_stages`).
    pub body_stages: usize,
    /// Total stages including the event scheduler's dispatcher.
    pub total_stages: usize,
    /// Longest unoptimized control path over all handlers, plus the
    /// dispatcher — the Figure 12 numerator.
    pub unoptimized_stages: usize,
    pub placements: Vec<Placement>,
    pub stage_stats: Vec<StageStats>,
    pub array_stage: HashMap<GlobalId, usize>,
}

impl Layout {
    /// Figure 12: unoptimized-to-optimized stage ratio.
    pub fn stage_ratio(&self) -> f64 {
        self.unoptimized_stages as f64 / self.total_stages as f64
    }

    /// Figure 13: mean ALU instructions per occupied stage.
    pub fn mean_alu_per_stage(&self) -> f64 {
        let occupied: Vec<&StageStats> = self.stage_stats.iter().filter(|s| s.tables > 0).collect();
        if occupied.is_empty() {
            return 0.0;
        }
        occupied.iter().map(|s| s.alu_ops()).sum::<usize>() as f64 / occupied.len() as f64
    }

    /// Figure 13 (upper envelope): max ALU instructions in any stage.
    pub fn max_alu_per_stage(&self) -> usize {
        self.stage_stats
            .iter()
            .map(StageStats::alu_ops)
            .max()
            .unwrap_or(0)
    }
}

/// Strictness of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edge {
    /// Consumer must be in a *later* stage (RAW, guard-def, non-excl WAW).
    Strict,
    /// Consumer may share the producer's stage but not precede it (WAR).
    Weak,
}

/// Compile the elaborated handlers onto a pipeline.
pub fn place(
    prog: &CheckedProgram,
    handlers: &[HandlerIr],
    spec: &PipelineSpec,
    opts: LayoutOptions,
) -> Result<Layout, Diagnostics> {
    let mut floors: HashMap<GlobalId, usize> = HashMap::new();
    // Outer fixpoint on array stage floors (see module docs).
    for _round in 0..4096 {
        match try_place(prog, handlers, spec, opts, &floors) {
            Ok(layout) => return Ok(layout),
            Err(PlaceError::BumpArray { array, to }) => {
                if std::env::var_os("LUCID_LAYOUT_DEBUG").is_some() {
                    eprintln!("layout: bump array {} to stage {to}", array.0);
                }
                let f = floors.entry(array).or_insert(0);
                if to <= *f {
                    break; // no progress; fall through to hard error
                }
                *f = to;
            }
            Err(PlaceError::Hard(d)) => {
                let mut ds = Diagnostics::new();
                ds.push(d.or_code("E0700"));
                return Err(ds);
            }
        }
    }
    let mut ds = Diagnostics::new();
    ds.push(
        Diagnostic::error_global(
            "table placement cannot make progress: register-array stage constraints are \
             unsatisfiable within the pipeline"
                .to_string(),
        )
        .with_code("E0700"),
    );
    Err(ds)
}

enum PlaceError {
    /// Array was pinned too early; retry with its floor raised.
    BumpArray {
        array: GlobalId,
        to: usize,
    },
    Hard(Diagnostic),
}

fn try_place(
    _prog: &CheckedProgram,
    handlers: &[HandlerIr],
    spec: &PipelineSpec,
    opts: LayoutOptions,
    floors: &HashMap<GlobalId, usize>,
) -> Result<Layout, PlaceError> {
    let mut array_stage: HashMap<GlobalId, usize> = HashMap::new();
    let mut stages: Vec<StageBuild> = Vec::new();
    let mut placements = Vec::new();

    for h in handlers {
        let deps = handler_deps(&h.tables, opts.rearrange);
        // Stage of each table in this handler, by table id.
        let mut stage_of: Vec<usize> = vec![0; h.tables.len()];
        for t in &h.tables {
            let mut min_stage = 0usize;
            for (j, edge) in &deps[t.id] {
                let req = match edge {
                    Edge::Strict => stage_of[*j] + 1,
                    Edge::Weak => stage_of[*j],
                };
                min_stage = min_stage.max(req);
            }
            let stage = if let Some(array) = t.op.array() {
                let floor = floors.get(&array).copied().unwrap_or(0);
                match array_stage.get(&array) {
                    Some(&s) => {
                        if s < min_stage {
                            // Pinned too early for this handler's data flow.
                            return Err(PlaceError::BumpArray {
                                array,
                                to: min_stage,
                            });
                        }
                        // Register access adds a sALU to the array's stage;
                        // capacity there is guaranteed by construction
                        // (one sALU per array per handler, exclusive paths).
                        s
                    }
                    None => {
                        let s = find_stage(
                            &mut stages,
                            spec,
                            opts,
                            min_stage.max(floor),
                            t,
                            Some(array),
                        )
                        .map_err(PlaceError::Hard)?;
                        array_stage.insert(array, s);
                        s
                    }
                }
            } else {
                find_stage(&mut stages, spec, opts, min_stage, t, None).map_err(PlaceError::Hard)?
            };
            commit(&mut stages, stage, t, opts);
            stage_of[t.id] = stage;
            placements.push(Placement {
                handler: h.name.clone(),
                table: t.id,
                stage,
            });
        }
    }

    let body_stages = stages
        .iter()
        .rposition(|s| s.stats.tables > 0)
        .map_or(0, |i| i + 1);
    let total_stages = body_stages + opts.dispatcher_stages;
    if total_stages > spec.stages {
        return Err(PlaceError::Hard(Diagnostic::error_global(format!(
            "program needs {total_stages} stages but the pipeline has {}",
            spec.stages
        ))));
    }
    let unopt_body = handlers
        .iter()
        .map(|h| h.unoptimized_depth)
        .max()
        .unwrap_or(0);
    Ok(Layout {
        body_stages,
        total_stages,
        unoptimized_stages: unopt_body + opts.dispatcher_stages,
        placements,
        stage_stats: stages.into_iter().map(|s| s.stats).collect(),
        array_stage,
    })
}

/// Per-handler dependency edges: `deps[i]` lists `(j, edge)` with `j < i`.
fn handler_deps(tables: &[AtomicTable], rearrange: bool) -> Vec<Vec<(usize, Edge)>> {
    let mut deps: Vec<Vec<(usize, Edge)>> = vec![Vec::new(); tables.len()];
    for (i, t) in tables.iter().enumerate() {
        let uses: Vec<&str> = t.op.uses();
        let def = t.op.def();
        let guard_vars: Vec<&str> = t.guard.iter().map(|c| c.var.as_str()).collect();
        for (j, p) in tables.iter().enumerate().take(i) {
            if t.excludes(p) {
                // Mutually exclusive tables never observe each other's
                // effects: no ordering needed, in either mode. (Ordering
                // across exclusive branches would create cyclic demands on
                // register stages that no pipeline can satisfy.)
                continue;
            }
            let p_def = p.op.def();
            let p_uses: Vec<&str> = p.op.uses();
            let p_guards: Vec<&str> = p.guard.iter().map(|c| c.var.as_str()).collect();
            let mut edge: Option<Edge> = None;
            if !rearrange {
                edge = Some(Edge::Strict);
            }
            if let Some(d) = p_def {
                // RAW on operand or guard key.
                if uses.contains(&d) || guard_vars.contains(&d) {
                    edge = Some(Edge::Strict);
                }
            }
            if let (Some(d), Some(pd)) = (def, p_def) {
                if d == pd && !t.excludes(p) {
                    // Non-exclusive WAW: later write must land later.
                    edge = Some(Edge::Strict);
                }
            }
            if edge.is_none() {
                if let Some(d) = def {
                    // WAR: reader (earlier) may share the stage (it reads
                    // the incoming PHV) but must not come after the writer.
                    if p_uses.contains(&d) || p_guards.contains(&d) {
                        edge = Some(Edge::Weak);
                    }
                }
            }
            if let Some(e) = edge {
                deps[i].push((j, e));
            }
        }
    }
    deps
}

/// A stage being filled: resource stats plus merge groups.
#[derive(Debug, Clone, Default)]
struct StageBuild {
    stats: StageStats,
    /// Merged logical tables: the set of match-key variables each carries.
    merge_groups: Vec<Vec<String>>,
}

/// Find the earliest stage ≥ `min_stage` with room for `t`.
fn find_stage(
    stages: &mut Vec<StageBuild>,
    spec: &PipelineSpec,
    opts: LayoutOptions,
    min_stage: usize,
    t: &AtomicTable,
    array: Option<GlobalId>,
) -> Result<usize, Diagnostic> {
    for s in min_stage..spec.stages.saturating_sub(opts.dispatcher_stages) {
        while stages.len() <= s {
            stages.push(StageBuild::default());
        }
        let st = &stages[s];
        // A stateful ALU serves one register array; accesses from different
        // (mutually exclusive) tables to the same array share it. The
        // budget therefore counts *distinct arrays* per stage.
        let salu_ok = match array {
            Some(a) => st.stats.arrays.contains(&a) || st.stats.arrays.len() < spec.salus_per_stage,
            None => true,
        };
        let act_ok = st.stats.action_ops + t.op.action_slots() <= spec.action_slots_per_stage;
        let merge_ok = can_merge(st, t, spec, opts);
        if salu_ok && act_ok && merge_ok {
            return Ok(s);
        }
    }
    Err(Diagnostic::error_global(format!(
        "no stage can host table {} of handler `{}`: the pipeline's {} stages are exhausted",
        t.id, t.handler, spec.stages
    )))
}

/// Would `t` fit into an existing merge group of `st`, or is there room for
/// a new logical table?
fn can_merge(st: &StageBuild, t: &AtomicTable, spec: &PipelineSpec, opts: LayoutOptions) -> bool {
    let keys: Vec<String> = t.guard.iter().map(|c| c.var.clone()).collect();
    for g in &st.merge_groups {
        let combined = union_len(g, &keys);
        if combined <= opts.merge_key_budget {
            return true;
        }
    }
    st.merge_groups.len() < spec.tables_per_stage
}

fn union_len(a: &[String], b: &[String]) -> usize {
    let mut n = a.len();
    for k in b {
        if !a.contains(k) {
            n += 1;
        }
    }
    n
}

/// Record `t` in `stage`, updating stats and merge groups.
fn commit(stages: &mut Vec<StageBuild>, stage: usize, t: &AtomicTable, opts: LayoutOptions) {
    while stages.len() <= stage {
        stages.push(StageBuild::default());
    }
    let st = &mut stages[stage];
    st.stats.tables += 1;
    st.stats.salus += t.op.salus();
    st.stats.action_ops += t.op.action_slots();
    if let Some(a) = t.op.array() {
        if !st.stats.arrays.contains(&a) {
            st.stats.arrays.push(a);
        }
    }
    let keys: Vec<String> = t.guard.iter().map(|c| c.var.clone()).collect();
    // Greedy merge (Figure 8): join the first group whose key union fits.
    for g in &mut st.merge_groups {
        if union_len(g, &keys) <= opts.merge_key_budget {
            for k in keys {
                if !g.contains(&k) {
                    g.push(k);
                }
            }
            st.stats.merged_tables = st.merge_groups.len();
            return;
        }
    }
    st.merge_groups.push(keys);
    st.stats.merged_tables = st.merge_groups.len();
}

/// Convenience: [`crate::lower`] with default options on the Tofino.
pub fn compile_layout(prog: &CheckedProgram) -> Result<(Vec<HandlerIr>, Layout), Diagnostics> {
    crate::lower(prog, &crate::BackendOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use lucid_check::parse_and_check;

    fn layout_of(src: &str) -> Layout {
        let prog = parse_and_check(src).expect("checks");
        let handlers = elaborate(&prog).expect("elaborates");
        place(
            &prog,
            &handlers,
            &PipelineSpec::tofino(),
            LayoutOptions::default(),
        )
        .expect("places")
    }

    const FIG6: &str = r#"
        const int NUM_PORTS = 64;
        const int NUM_PORTS_X2 = 128;
        const int TCP = 6;
        const int UDP = 17;
        global nexthops = new Array<<32>>(256);
        global pcts = new Array<<32>>(192);
        global hcts = new Array<<32>>(256);
        memop plus(int cur, int x) { return cur + x; }
        event count_pkt(int dst, int proto);
        handle count_pkt(int dst, int proto) {
            int idx = Array.get(nexthops, dst);
            if (proto != TCP) {
                if (proto == UDP) { idx = idx + NUM_PORTS; }
                else { idx = idx + NUM_PORTS_X2; }
            }
            Array.setm(pcts, idx, plus, 1);
            if (proto == TCP) {
                Array.setm(hcts, dst, plus, 1);
            }
        }
    "#;

    #[test]
    fn figure6_optimizations_save_stages() {
        let l = layout_of(FIG6);
        // Figure 6: 7-deep control graph optimizes to 3 stages of tables
        // (nexthops+conds | idx writes | pcts), with hcts rearranged into an
        // early stage. Dispatcher adds one.
        assert_eq!(l.unoptimized_stages, 7 + 1);
        assert!(
            l.total_stages <= 5,
            "optimized to {} stages",
            l.total_stages
        );
        assert!(l.stage_ratio() > 1.5, "ratio {}", l.stage_ratio());
    }

    #[test]
    fn figure6_hcts_runs_early() {
        // §6.2 "Rearranging tables": hcts_fset has no dataflow deps on
        // earlier tables (dst and proto come with the packet), so it should
        // not wait for the nexthops/pcts chain.
        let l = layout_of(FIG6);
        let prog = parse_and_check(FIG6).unwrap();
        let hcts = prog.info.globals_by_name["hcts"];
        let pcts = prog.info.globals_by_name["pcts"];
        assert!(
            l.array_stage[&hcts] < l.array_stage[&pcts],
            "hcts at {} should precede pcts at {}",
            l.array_stage[&hcts],
            l.array_stage[&pcts]
        );
    }

    #[test]
    fn rearrangement_ablation_costs_stages() {
        let prog = parse_and_check(FIG6).unwrap();
        let handlers = elaborate(&prog).unwrap();
        let with = place(
            &prog,
            &handlers,
            &PipelineSpec::tofino(),
            LayoutOptions::default(),
        )
        .unwrap();
        let without = place(
            &prog,
            &handlers,
            &PipelineSpec::tofino(),
            LayoutOptions {
                rearrange: false,
                ..LayoutOptions::default()
            },
        )
        .unwrap();
        assert!(
            without.total_stages > with.total_stages,
            "serialized {} vs rearranged {}",
            without.total_stages,
            with.total_stages
        );
    }

    #[test]
    fn arrays_keep_declaration_order_across_handlers() {
        let l = layout_of(
            r#"
            global a = new Array<<32>>(8);
            global b = new Array<<32>>(8);
            event one(int i);
            event two(int i);
            handle one(int i) {
                int x = Array.get(a, i);
                Array.set(b, i, x);
            }
            handle two(int i) {
                Array.set(b, i, i);
            }
            "#,
        );
        let a = l.array_stage.iter().find(|(g, _)| g.0 == 0).unwrap().1;
        let b = l.array_stage.iter().find(|(g, _)| g.0 == 1).unwrap().1;
        assert!(a < b, "a at {a}, b at {b}");
    }

    #[test]
    fn fixpoint_bumps_array_pinned_too_early() {
        // Handler `fast` would pin `shared` at stage 0; handler `slow`
        // reaches it only after a 2-op chain, forcing a retry that floats
        // `shared` later.
        let l = layout_of(
            r#"
            global shared = new Array<<32>>(8);
            event fast(int i);
            event slow(int i);
            handle fast(int i) { Array.set(shared, i, i); }
            handle slow(int i) {
                int x = i + 1;
                int y = x + 2;
                Array.set(shared, y, i);
            }
            "#,
        );
        let shared = l.array_stage.iter().next().unwrap().1;
        assert!(*shared >= 2, "shared pinned at {shared}");
    }

    #[test]
    fn independent_ops_share_a_stage() {
        let l = layout_of(
            r#"
            event go(int a, int b);
            event out(int x, int y);
            handle go(int a, int b) {
                int x = a + 1;
                int y = b + 2;
                generate out(x, y);
            }
            "#,
        );
        // x and y have no mutual deps: both in stage 0.
        assert!(l.stage_stats[0].action_ops >= 2, "{:?}", l.stage_stats[0]);
    }

    #[test]
    fn empty_handler_occupies_only_the_dispatcher() {
        // Zero tables → zero body stages; the stage-count folds must not
        // assume a nonempty placement.
        let l = layout_of("event noop(); handle noop() { }");
        assert_eq!(l.body_stages, 0);
        assert_eq!(l.total_stages, LayoutOptions::default().dispatcher_stages);
        assert_eq!(
            l.unoptimized_stages,
            LayoutOptions::default().dispatcher_stages
        );
        assert!(l.placements.is_empty());
        assert_eq!(l.max_alu_per_stage(), 0);
        assert_eq!(l.mean_alu_per_stage(), 0.0);
    }

    #[test]
    fn alu_parallelism_reported() {
        let l = layout_of(FIG6);
        assert!(l.mean_alu_per_stage() >= 1.0);
        assert!(l.max_alu_per_stage() >= 2);
    }

    #[test]
    fn oversized_program_rejected_with_stage_count() {
        // 14 chained additions cannot fit 12 stages.
        let mut body = String::new();
        body.push_str("int x0 = a + 1;\n");
        for i in 1..14 {
            body.push_str(&format!("int x{i} = x{} + 1;\n", i - 1));
        }
        let src = format!(
            "event go(int a); event out(int x); handle go(int a) {{ {body} generate out(x13); }}"
        );
        let prog = parse_and_check(&src).unwrap();
        let handlers = elaborate(&prog).unwrap();
        let err = place(
            &prog,
            &handlers,
            &PipelineSpec::tofino(),
            LayoutOptions::default(),
        )
        .unwrap_err();
        assert!(err.items[0].message.contains("stages"), "{}", err.items[0]);
    }
}
