//! # lucid-backend
//!
//! The optimizing compiler backend (§6 of the paper): checked Lucid
//! programs → atomic tables → optimized pipeline layout → Tofino-style
//! P4_16.
//!
//! Pipeline:
//!
//! 1. [`elaborate`] — function inlining, return normalization, and
//!    subexpression elimination down to atomic (one-ALU) statements, with
//!    branch conditions inlined as table guards (§6.1 and §6.2 step 1).
//! 2. [`layout`] — dataflow-driven rearrangement, greedy merging, and stage
//!    placement against the [`PipelineSpec`](lucid_tofino::PipelineSpec)
//!    resource model (§6.2 steps 2–3).
//! 3. [`p4`] — P4_16 text generation with Figure 10's per-category line
//!    accounting.
//!
//! [`compile`] runs all three.

pub mod elaborate;
pub mod ir;
pub mod layout;
pub mod opt;
pub mod p4;

pub use elaborate::elaborate;
pub use ir::{AtomicOp, AtomicTable, Cond, HandlerIr, LocSpec, MemKind, Operand};
pub use layout::{compile_layout, place, Layout, LayoutOptions, Placement, StageStats};
pub use opt::{optimize, OptStats};
pub use p4::{generate, P4Loc, P4Program};

use lucid_check::CheckedProgram;
use lucid_frontend::diag::Diagnostics;

/// A complete compilation artifact.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub handlers: Vec<HandlerIr>,
    pub layout: Layout,
    pub p4: P4Program,
}

/// Run the full backend with default options on the Tofino target.
pub fn compile(prog: &CheckedProgram) -> Result<Compiled, Diagnostics> {
    let (handlers, layout) = compile_layout(prog)?;
    let p4 = generate(prog, &handlers, &layout);
    Ok(Compiled { handlers, layout, p4 })
}
