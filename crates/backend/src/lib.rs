//! # lucid-backend
//!
//! The optimizing compiler backend (§6 of the paper): checked Lucid
//! programs → atomic tables → optimized pipeline layout → Tofino-style
//! P4_16.
//!
//! Pipeline:
//!
//! 1. [`mod@elaborate`] — function inlining, return normalization, and
//!    subexpression elimination down to atomic (one-ALU) statements, with
//!    branch conditions inlined as table guards (§6.1 and §6.2 step 1).
//! 2. [`layout`] — dataflow-driven rearrangement, greedy merging, and stage
//!    placement against the [`PipelineSpec`]
//!    resource model (§6.2 steps 2–3).
//! 3. [`p4`] — P4_16 text generation with Figure 10's per-category line
//!    accounting.
//!
//! [`compile`] runs all three.

#![forbid(unsafe_code)]

pub mod elaborate;
pub mod ir;
pub mod layout;
pub mod opt;
pub mod p4;

pub use elaborate::elaborate;
pub use ir::{AtomicOp, AtomicTable, Cond, HandlerIr, LocSpec, MemKind, Operand};
pub use layout::{compile_layout, place, Layout, LayoutOptions, Placement, StageStats};
pub use opt::{optimize, OptStats};
pub use p4::{generate, P4Loc, P4Program};

use lucid_check::CheckedProgram;
use lucid_frontend::diag::Diagnostics;
use lucid_tofino::PipelineSpec;

/// A complete compilation artifact.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub handlers: Vec<HandlerIr>,
    pub layout: Layout,
    pub p4: P4Program,
}

/// Backend configuration: the target pipeline, the layout knobs, and
/// whether the IR clean-up pass (copy propagation + dead-table
/// elimination) runs. `lucid_core::Compiler` threads one of these through
/// every build session.
#[derive(Debug, Clone)]
pub struct BackendOptions {
    pub target: PipelineSpec,
    pub layout: LayoutOptions,
    pub optimize: bool,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            target: PipelineSpec::tofino(),
            layout: LayoutOptions::default(),
            optimize: true,
        }
    }
}

/// Run the full backend with default options on the Tofino target.
pub fn compile(prog: &CheckedProgram) -> Result<Compiled, Diagnostics> {
    compile_with(prog, &BackendOptions::default())
}

/// Run the full backend against an explicit target and layout
/// configuration.
pub fn compile_with(prog: &CheckedProgram, opts: &BackendOptions) -> Result<Compiled, Diagnostics> {
    let (handlers, layout) = lower(prog, opts)?;
    let p4 = generate(prog, &handlers, &layout);
    Ok(Compiled {
        handlers,
        layout,
        p4,
    })
}

/// The shared backend driver short of code generation: elaborate,
/// optionally clean up the IR, and place onto the target pipeline.
pub fn lower(
    prog: &CheckedProgram,
    opts: &BackendOptions,
) -> Result<(Vec<HandlerIr>, Layout), Diagnostics> {
    let mut handlers = elaborate(prog)?;
    if opts.optimize {
        optimize(&mut handlers);
    }
    let layout = place(prog, &handlers, &opts.target, opts.layout)?;
    Ok((handlers, layout))
}
