//! Cleanup optimizations over atomic tables: copy/constant propagation and
//! dead-table elimination.
//!
//! Elaboration (§6.1) is deliberately naive — every intermediate gets a
//! temp and a `Mov` — because that keeps it auditable. This pass then
//! removes the slack before placement, the same division of labor the
//! paper's compiler uses ("function inlining and subexpression elimination
//! to reduce a handler's body", then table-level optimization):
//!
//! * **copy propagation** — a `Mov{dst, src}` whose `dst` is written
//!   exactly once, and whose `src` is a constant or a never-written
//!   variable (a parameter or a scheduler-provided field), is folded into
//!   every use of `dst`, including guard keys;
//! * **constant guards** — a guard conjunct over a now-constant key is
//!   decided statically: satisfied conjuncts disappear, contradicted ones
//!   delete the whole table;
//! * **dead-table elimination** — pure tables (`Mov`/`Bin`/`Un`/`Hash` and
//!   read-only `Mem`) whose result is never consumed are dropped,
//!   iterating to a fixpoint.
//!
//! Fewer tables means shorter dependence chains and fewer action slots —
//! directly visible in the Figure 12/13 metrics.

use crate::ir::*;
use std::collections::HashMap;

/// What the pass did, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    pub copies_propagated: usize,
    pub tables_removed: usize,
    pub guards_resolved: usize,
}

/// Optimize every handler in place.
pub fn optimize(handlers: &mut [HandlerIr]) -> OptStats {
    let mut stats = OptStats::default();
    for h in handlers {
        loop {
            let before = stats;
            propagate_copies(h, &mut stats);
            resolve_constant_guards(h, &mut stats);
            eliminate_dead_tables(h, &mut stats);
            if stats == before {
                break;
            }
        }
        // Re-number densely so later phases can index by id.
        for (i, t) in h.tables.iter_mut().enumerate() {
            t.id = i;
        }
    }
    stats
}

/// Count definitions of each variable in a handler.
fn def_counts(h: &HandlerIr) -> HashMap<String, usize> {
    let mut defs: HashMap<String, usize> = HashMap::new();
    for t in &h.tables {
        if let Some(d) = t.op.def() {
            *defs.entry(d.to_string()).or_insert(0) += 1;
        }
    }
    defs
}

fn propagate_copies(h: &mut HandlerIr, stats: &mut OptStats) {
    let defs = def_counts(h);
    // Collect foldable copies: dst written once, src stable.
    let mut subst: HashMap<String, Operand> = HashMap::new();
    for t in &h.tables {
        let AtomicOp::Mov { dst, src } = &t.op else {
            continue;
        };
        if !t.guard.is_empty() {
            // A guarded copy only happens on some paths; not foldable.
            continue;
        }
        if defs.get(dst).copied().unwrap_or(0) != 1 {
            continue;
        }
        let stable = match src {
            Operand::Const(_) => true,
            Operand::Var(v) => !defs.contains_key(v),
        };
        if stable {
            subst.insert(dst.clone(), src.clone());
        }
    }
    if subst.is_empty() {
        return;
    }
    // Resolve chains (a = b; c = a) up front.
    let resolve = |mut op: Operand, subst: &HashMap<String, Operand>| -> Operand {
        for _ in 0..=subst.len() {
            match &op {
                Operand::Var(v) => match subst.get(v) {
                    Some(next) => op = next.clone(),
                    None => break,
                },
                Operand::Const(_) => break,
            }
        }
        op
    };

    for t in &mut h.tables {
        let replaced = rewrite_operands(&mut t.op, |o| {
            let n = resolve(o.clone(), &subst);
            if &n != o {
                Some(n)
            } else {
                None
            }
        });
        stats.copies_propagated += replaced;
        // Guard keys: only var→var renames apply directly; var→const is
        // resolved by `resolve_constant_guards`.
        for c in &mut t.guard {
            if let Operand::Var(v) = resolve(Operand::Var(c.var.clone()), &subst) {
                if v != c.var {
                    c.var = v;
                    stats.copies_propagated += 1;
                }
            }
        }
    }
}

/// Apply `f` to every operand of `op`; returns how many were rewritten.
fn rewrite_operands(op: &mut AtomicOp, mut f: impl FnMut(&Operand) -> Option<Operand>) -> usize {
    let mut n = 0;
    let mut apply = |o: &mut Operand| {
        if let Some(new) = f(o) {
            *o = new;
            n += 1;
        }
    };
    match op {
        AtomicOp::Mov { src, .. } => apply(src),
        AtomicOp::Bin { a, b, .. } => {
            apply(a);
            apply(b);
        }
        AtomicOp::Un { a, .. } => apply(a),
        AtomicOp::Hash { args, .. } => args.iter_mut().for_each(apply),
        AtomicOp::Mem { index, kind, .. } => {
            apply(index);
            match kind {
                MemKind::Get => {}
                MemKind::Getm { arg, .. } | MemKind::Setm { arg, .. } => apply(arg),
                MemKind::Set { value } => apply(value),
                MemKind::Update { getarg, setarg, .. } => {
                    apply(getarg);
                    apply(setarg);
                }
            }
        }
        AtomicOp::Generate {
            args,
            delay,
            location,
            ..
        } => {
            args.iter_mut().for_each(&mut apply);
            if let Some(d) = delay {
                apply(d);
            }
            if let LocSpec::Switch(s) = location {
                apply(s);
            }
        }
    }
    n
}

/// Decide guard conjuncts whose key variable is a once-written constant.
fn resolve_constant_guards(h: &mut HandlerIr, stats: &mut OptStats) {
    let defs = def_counts(h);
    let mut consts: HashMap<String, u64> = HashMap::new();
    for t in &h.tables {
        if let AtomicOp::Mov {
            dst,
            src: Operand::Const(c),
        } = &t.op
        {
            if t.guard.is_empty() && defs.get(dst).copied().unwrap_or(0) == 1 {
                consts.insert(dst.clone(), *c);
            }
        }
    }
    if consts.is_empty() {
        return;
    }
    let mut keep = Vec::with_capacity(h.tables.len());
    for mut t in std::mem::take(&mut h.tables) {
        let mut alive = true;
        t.guard.retain(|c| match consts.get(&c.var) {
            None => true,
            Some(&v) => {
                stats.guards_resolved += 1;
                let holds = eval_cond(c, v);
                if !holds {
                    alive = false;
                }
                false
            }
        });
        if alive {
            keep.push(t);
        } else {
            stats.tables_removed += 1;
        }
    }
    h.tables = keep;
}

fn eval_cond(c: &Cond, v: u64) -> bool {
    use lucid_frontend::ast::BinOp::*;
    match c.cmp {
        Eq => v == c.value,
        Neq => v != c.value,
        Lt => v < c.value,
        Gt => v > c.value,
        Le => v <= c.value,
        Ge => v >= c.value,
        _ => true,
    }
}

/// Drop pure tables whose results nobody reads.
fn eliminate_dead_tables(h: &mut HandlerIr, stats: &mut OptStats) {
    loop {
        let mut used: HashMap<&str, usize> = HashMap::new();
        for t in &h.tables {
            for u in t.op.uses() {
                *used.entry(u).or_insert(0) += 1;
            }
            for c in &t.guard {
                *used.entry(c.var.as_str()).or_insert(0) += 1;
            }
        }
        let dead: Vec<usize> = h
            .tables
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                let pure = match &t.op {
                    AtomicOp::Mov { .. }
                    | AtomicOp::Bin { .. }
                    | AtomicOp::Un { .. }
                    | AtomicOp::Hash { .. } => true,
                    AtomicOp::Mem { kind, .. } => {
                        matches!(kind, MemKind::Get | MemKind::Getm { .. })
                    }
                    AtomicOp::Generate { .. } => false,
                };
                pure && t.op.def().is_some_and(|d| !used.contains_key(d))
            })
            .map(|(i, _)| i)
            .collect();
        if dead.is_empty() {
            return;
        }
        stats.tables_removed += dead.len();
        let mut i = 0;
        h.tables.retain(|_| {
            let drop = dead.contains(&i);
            i += 1;
            !drop
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use lucid_check::parse_and_check;

    fn optimized(src: &str) -> (Vec<HandlerIr>, OptStats) {
        let prog = parse_and_check(src).expect("checks");
        let mut handlers = elaborate(&prog).expect("elaborates");
        let stats = optimize(&mut handlers);
        (handlers, stats)
    }

    #[test]
    fn sys_time_copies_fold_away() {
        let (hs, stats) = optimized(
            r#"
            global ts = new Array<<32>>(4);
            event go(int i);
            handle go(int i) {
                int now = Sys.time();
                Array.set(ts, i, now);
            }
            "#,
        );
        assert!(stats.copies_propagated >= 1);
        // The Mov disappeared; the Mem writes the scheduler field directly.
        assert_eq!(hs[0].tables.len(), 1, "{:#?}", hs[0].tables);
        assert!(matches!(
            &hs[0].tables[0].op,
            AtomicOp::Mem { kind: MemKind::Set { value: Operand::Var(v) }, .. } if v == "lucid_ts"
        ));
    }

    #[test]
    fn unused_pure_reads_eliminated() {
        let (hs, stats) = optimized(
            r#"
            global a = new Array<<32>>(4);
            global b = new Array<<32>>(4);
            event go(int i);
            handle go(int i) {
                int x = Array.get(a, i);
                Array.set(b, i, i);
            }
            "#,
        );
        assert!(stats.tables_removed >= 1);
        assert_eq!(
            hs[0].tables.iter().filter(|t| t.op.salus() > 0).count(),
            1,
            "dead read of `a` must vanish"
        );
    }

    #[test]
    fn guarded_copies_are_not_folded() {
        let (hs, _) = optimized(
            r#"
            event go(int i);
            event out(int v);
            handle go(int i) {
                int v = 0;
                if (i > 3) { v = 7; }
                generate out(v);
            }
            "#,
        );
        // Both writers of v survive, and the generate still reads v.
        let gen = hs[0]
            .tables
            .iter()
            .find(|t| matches!(t.op, AtomicOp::Generate { .. }))
            .expect("generate survives");
        match &gen.op {
            AtomicOp::Generate { args, .. } => {
                assert!(matches!(&args[0], Operand::Var(_)), "{:?}", args[0]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reassigned_variables_are_not_folded() {
        let (hs, _) = optimized(
            r#"
            event go(int i);
            event out(int v);
            handle go(int i) {
                int v = 1;
                v = v + i;
                generate out(v);
            }
            "#,
        );
        // v is written twice; no substitution may happen.
        assert!(hs[0].tables.len() >= 3, "{:#?}", hs[0].tables);
    }

    #[test]
    fn optimization_shrinks_app_tables_but_preserves_effects() {
        for app in lucid_apps_sources() {
            let prog = parse_and_check(app).expect("checks");
            let raw = elaborate(&prog).expect("elaborates");
            let mut opt = raw.clone();
            optimize(&mut opt);
            for (r, o) in raw.iter().zip(&opt) {
                assert!(o.tables.len() <= r.tables.len(), "{}", r.name);
                // Effectful tables (writes, generates) are never dropped.
                let eff = |ts: &[AtomicTable]| {
                    ts.iter()
                        .filter(|t| {
                            matches!(
                                &t.op,
                                AtomicOp::Generate { .. }
                                    | AtomicOp::Mem {
                                        kind: MemKind::Set { .. }
                                            | MemKind::Setm { .. }
                                            | MemKind::Update { .. },
                                        ..
                                    }
                            )
                        })
                        .count()
                };
                assert_eq!(eff(&r.tables), eff(&o.tables), "{}", r.name);
            }
        }
    }

    /// A couple of representative app sources, inlined to avoid a circular
    /// dev-dependency on lucid-apps.
    fn lucid_apps_sources() -> Vec<&'static str> {
        vec![
            include_str!("../../apps/programs/historical_sketch.lucid"),
            include_str!("../../apps/programs/shared_state.lucid"),
            include_str!("../../apps/programs/rip_router.lucid"),
        ]
    }
}
