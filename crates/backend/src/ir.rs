//! Backend intermediate representation: *atomic tables* (§6.1).
//!
//! After inlining and subexpression elimination, a handler body is a set of
//! statements that are each simple enough to execute with at most one
//! Tofino ALU. Each statement becomes one **atomic table**:
//!
//! * an *operation table* — one ALU op over two operands into a local;
//! * a *memory operation table* — one stateful-ALU access to one register
//!   array (a direct translation of an `Array` method call);
//! * (*branch tables* exist only transiently: the first optimization of
//!   §6.2 inlines every branch condition into its dependent tables' match
//!   rules, so this IR stores each table's **guard** — the conjunction of
//!   branch conditions on its control path — instead of explicit branch
//!   nodes. The pre-optimization table count is tracked separately for the
//!   Figure 12 comparison.)

use lucid_check::GlobalId;
use lucid_frontend::ast::{BinOp, UnOp};
use std::fmt;

/// An operand of an atomic operation: a handler-local variable (P4
/// metadata) or a compile-time constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    Var(String),
    Const(u64),
}

impl Operand {
    pub fn var_name(&self) -> Option<&str> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// The stateful part of a memory-operation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemKind {
    /// Plain read into `dst`.
    Get,
    /// Read through a memop: `dst = memop(mem, arg)`.
    Getm { memop: String, arg: Operand },
    /// Plain write.
    Set { value: Operand },
    /// Write through a memop: `mem = memop(mem, arg)`.
    Setm { memop: String, arg: Operand },
    /// Parallel read+write: `dst = getop(mem, getarg); mem = setop(mem, setarg)`.
    Update {
        getop: String,
        getarg: Operand,
        setop: String,
        setarg: Operand,
    },
}

impl MemKind {
    /// Does this operation produce a value?
    pub fn reads(&self) -> bool {
        matches!(
            self,
            MemKind::Get | MemKind::Getm { .. } | MemKind::Update { .. }
        )
    }

    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            MemKind::Get => vec![],
            MemKind::Getm { arg, .. } | MemKind::Setm { arg, .. } => vec![arg],
            MemKind::Set { value } => vec![value],
            MemKind::Update { getarg, setarg, .. } => vec![getarg, setarg],
        }
    }
}

/// Where a generated event is sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocSpec {
    /// Recirculate to this switch.
    Here,
    /// Unicast to a switch id.
    Switch(Operand),
    /// Multicast to a compile-time group.
    Group(Vec<u64>),
}

/// One atomic operation (the body of one atomic table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicOp {
    /// `dst = src` — a copy (often folded away).
    Mov { dst: String, src: Operand },
    /// `dst = a op b` — one ALU op. Comparison operators produce 0/1.
    Bin {
        dst: String,
        op: BinOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = op a`.
    Un { dst: String, op: UnOp, a: Operand },
    /// `dst = hash<<w>>(seed, args..)` — one hash-engine invocation.
    Hash {
        dst: String,
        width: u32,
        seed: u64,
        args: Vec<Operand>,
    },
    /// One stateful-ALU access to `array`.
    Mem {
        dst: Option<String>,
        array: GlobalId,
        index: Operand,
        kind: MemKind,
    },
    /// Emit an event packet (serializer + dispatcher handle the rest).
    Generate {
        event_id: usize,
        event_name: String,
        args: Vec<Operand>,
        /// Extra delay in µs, if any.
        delay: Option<Operand>,
        location: LocSpec,
    },
}

impl AtomicOp {
    /// The local variable this op writes, if any.
    pub fn def(&self) -> Option<&str> {
        match self {
            AtomicOp::Mov { dst, .. }
            | AtomicOp::Bin { dst, .. }
            | AtomicOp::Un { dst, .. }
            | AtomicOp::Hash { dst, .. } => Some(dst),
            AtomicOp::Mem { dst, .. } => dst.as_deref(),
            AtomicOp::Generate { .. } => None,
        }
    }

    /// Every local variable this op reads.
    pub fn uses(&self) -> Vec<&str> {
        let mut operands: Vec<&Operand> = Vec::new();
        match self {
            AtomicOp::Mov { src, .. } => operands.push(src),
            AtomicOp::Bin { a, b, .. } => {
                operands.push(a);
                operands.push(b);
            }
            AtomicOp::Un { a, .. } => operands.push(a),
            AtomicOp::Hash { args, .. } => operands.extend(args.iter()),
            AtomicOp::Mem { index, kind, .. } => {
                operands.push(index);
                operands.extend(kind.operands());
            }
            AtomicOp::Generate {
                args,
                delay,
                location,
                ..
            } => {
                operands.extend(args.iter());
                if let Some(d) = delay {
                    operands.push(d);
                }
                if let LocSpec::Switch(s) = location {
                    operands.push(s);
                }
            }
        }
        let mut out: Vec<&str> = Vec::new();
        for o in operands {
            if let Some(v) = o.var_name() {
                out_push(&mut out, v);
            }
        }
        out
    }

    /// The register array this op touches, if it is a memory op.
    pub fn array(&self) -> Option<GlobalId> {
        match self {
            AtomicOp::Mem { array, .. } => Some(*array),
            _ => None,
        }
    }

    /// Number of stateful ALUs this table needs.
    pub fn salus(&self) -> usize {
        matches!(self, AtomicOp::Mem { .. }) as usize
    }

    /// Number of plain action-ALU slots this table needs.
    pub fn action_slots(&self) -> usize {
        match self {
            AtomicOp::Mem { .. } => 0,
            // An event generation writes the event header fields: one PHV
            // move per argument (plus id/delay fields, amortized).
            AtomicOp::Generate { args, .. } => args.len().max(1),
            _ => 1,
        }
    }
}

// Tiny helper: push without duplicates, preserving order.
fn out_push<'a>(v: &mut Vec<&'a str>, s: &'a str) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// One conjunct of a table's guard: a comparison of a variable against a
/// constant, implementable as a static ternary/range match rule (Figure 7's
/// branch table matches `proto` directly). Complex conditions are first
/// materialized into 0/1 temps by operation tables and then guarded as
/// `temp != 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    pub var: String,
    /// A comparison operator (`Eq`, `Neq`, `Lt`, `Gt`, `Le`, `Ge`).
    pub cmp: BinOp,
    pub value: u64,
}

impl Cond {
    /// The logical negation, still expressible as one match rule.
    pub fn negate(&self) -> Cond {
        let cmp = match self.cmp {
            BinOp::Eq => BinOp::Neq,
            BinOp::Neq => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Ge => BinOp::Lt,
            BinOp::Gt => BinOp::Le,
            BinOp::Le => BinOp::Gt,
            other => other,
        };
        Cond {
            var: self.var.clone(),
            cmp,
            value: self.value,
        }
    }

    /// Conservative contradiction test: can `self` and `other` both hold?
    /// Only clearly-contradictory pairs over the same variable return true.
    pub fn contradicts(&self, other: &Cond) -> bool {
        if self.var != other.var {
            return false;
        }
        use BinOp::*;
        match (self.cmp, self.value, other.cmp, other.value) {
            (Eq, a, Eq, b) => a != b,
            (Eq, a, Neq, b) | (Neq, b, Eq, a) => a == b,
            (Lt, a, Ge, b) | (Ge, b, Lt, a) => b >= a,
            (Gt, a, Le, b) | (Le, b, Gt, a) => b <= a,
            (Eq, a, Lt, b) | (Lt, b, Eq, a) => a >= b,
            (Eq, a, Gt, b) | (Gt, b, Eq, a) => a <= b,
            _ => false,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.var, self.cmp.symbol(), self.value)
    }
}

/// One atomic table: an operation plus the control-path guard under which
/// it executes (§6.2 step 1 — "each non-branch table checks the conditions
/// necessary for its own execution using static match-action rules").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicTable {
    /// Dense id within its handler program.
    pub id: usize,
    /// Name of the event/handler this table belongs to.
    pub handler: String,
    pub op: AtomicOp,
    pub guard: Vec<Cond>,
}

impl AtomicTable {
    /// Two tables on the same control path (one guard is a prefix-compatible
    /// extension of the other) can never both be skipped; two tables whose
    /// guards contradict are mutually exclusive.
    pub fn excludes(&self, other: &AtomicTable) -> bool {
        if self.handler != other.handler {
            // Different handlers are dispatched by event type: exclusive.
            return true;
        }
        self.guard
            .iter()
            .any(|c| other.guard.iter().any(|d| c.contradicts(d)))
    }
}

/// A compiled handler: its tables plus bookkeeping for the evaluation.
#[derive(Debug, Clone)]
pub struct HandlerIr {
    pub name: String,
    pub event_id: usize,
    pub tables: Vec<AtomicTable>,
    /// Longest root-to-leaf path of the *unoptimized* table control graph
    /// (operation + memory + branch tables each in their own stage) — the
    /// Figure 12 denominator.
    pub unoptimized_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_dedups_and_skips_consts() {
        let op = AtomicOp::Bin {
            dst: "c".into(),
            op: BinOp::Add,
            a: Operand::Var("x".into()),
            b: Operand::Var("x".into()),
        };
        assert_eq!(op.uses(), vec!["x"]);
        assert_eq!(op.def(), Some("c"));
    }

    #[test]
    fn mem_op_counts_one_salu() {
        let op = AtomicOp::Mem {
            dst: Some("v".into()),
            array: GlobalId(0),
            index: Operand::Const(0),
            kind: MemKind::Get,
        };
        assert_eq!(op.salus(), 1);
        assert_eq!(op.action_slots(), 0);
    }

    #[test]
    fn contradictory_guards_exclude() {
        let mk = |cmp| AtomicTable {
            id: 0,
            handler: "h".into(),
            op: AtomicOp::Mov {
                dst: "a".into(),
                src: Operand::Const(1),
            },
            guard: vec![Cond {
                var: "c".into(),
                cmp,
                value: 0,
            }],
        };
        assert!(mk(BinOp::Eq).excludes(&mk(BinOp::Neq)));
        assert!(!mk(BinOp::Eq).excludes(&mk(BinOp::Eq)));
    }

    #[test]
    fn cond_negate_roundtrips() {
        let c = Cond {
            var: "x".into(),
            cmp: BinOp::Lt,
            value: 5,
        };
        assert_eq!(c.negate().negate(), c);
        assert!(c.contradicts(&c.negate()));
    }

    #[test]
    fn distinct_eq_constants_contradict() {
        let a = Cond {
            var: "x".into(),
            cmp: BinOp::Eq,
            value: 1,
        };
        let b = Cond {
            var: "x".into(),
            cmp: BinOp::Eq,
            value: 2,
        };
        assert!(a.contradicts(&b));
        let c = Cond {
            var: "y".into(),
            cmp: BinOp::Eq,
            value: 2,
        };
        assert!(!a.contradicts(&c));
    }

    #[test]
    fn different_handlers_always_exclude() {
        let a = AtomicTable {
            id: 0,
            handler: "h1".into(),
            op: AtomicOp::Mov {
                dst: "a".into(),
                src: Operand::Const(1),
            },
            guard: vec![],
        };
        let mut b = a.clone();
        b.handler = "h2".into();
        assert!(a.excludes(&b));
    }
}
