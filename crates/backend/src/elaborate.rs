//! Elaboration: checked AST → atomic tables (§6.1).
//!
//! Three transformations happen here, in one recursive walk per handler:
//!
//! 1. **Function inlining** — every call is replaced by the callee's body
//!    with parameters substituted (array parameters bind to concrete
//!    globals, mirroring the checker's per-instantiation discipline).
//!    Bodies are first *return-normalized* so that early `return`s become
//!    properly nested branches.
//! 2. **Subexpression elimination** — expressions flatten into
//!    three-address form: every intermediate lands in a fresh temp, so each
//!    statement needs at most one ALU.
//! 3. **Branch-condition inlining** — instead of materializing branch
//!    tables, each atomic table records its *guard*: the conjunction of
//!    branch-condition temps on its control path (§6.2 step 1). The
//!    pre-optimization depth (with branch tables, Figure 6(1)) is computed
//!    structurally for the Figure 12 comparison.

use crate::ir::*;
use lucid_check::{CheckedProgram, GlobalId};
use lucid_frontend::ast::*;
use lucid_frontend::diag::{Diagnostic, Diagnostics};
use std::collections::HashMap;

/// Elaborate every handler of a checked program.
pub fn elaborate(prog: &CheckedProgram) -> Result<Vec<HandlerIr>, Diagnostics> {
    let mut out = Vec::new();
    let mut diags = Diagnostics::new();
    for decl in &prog.program.decls {
        if let DeclKind::Handler { name, params, body } = &decl.kind {
            let event_id = prog.info.event(&name.name).expect("checked").id;
            let mut cx = Elab {
                prog,
                tables: Vec::new(),
                guard: Vec::new(),
                tmp: 0,
                handler: name.name.clone(),
                diags: &mut diags,
            };
            let mut env = Env::default();
            for p in params {
                // Handler parameters arrive in the event header; they are
                // already named PHV fields.
                env.bind(
                    &p.name.name,
                    Binding::Value(Operand::Var(p.name.name.clone())),
                );
            }
            let body = normalize_returns(body.clone(), None);
            cx.block(&body, &mut env);
            let unoptimized_depth = control_graph_depth(&body);
            out.push(HandlerIr {
                name: name.name.clone(),
                event_id,
                tables: cx.tables,
                unoptimized_depth,
            });
        }
    }
    if diags.has_errors() {
        Err(diags.or_code_all("E0600"))
    } else {
        Ok(out)
    }
}

/// Depth of the unoptimized atomic-table control graph (Figure 6(1)):
/// every atomic statement is one table-stage, every `if` adds a branch
/// table ahead of its branches.
fn control_graph_depth(b: &Block) -> usize {
    b.stmts.iter().map(stmt_depth).sum()
}

fn stmt_depth(s: &Stmt) -> usize {
    match &s.kind {
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            let t = control_graph_depth(then_blk);
            let e = else_blk.as_ref().map_or(0, control_graph_depth);
            1 + t.max(e)
        }
        // `printf` is interpreter-only; it occupies no table.
        StmtKind::Printf { .. } => 0,
        StmtKind::Return(_) => 0,
        _ => 1,
    }
}

/// Rewrite a block so every `return` is in tail position, by pushing the
/// continuation of an early-returning `if` into its non-returning branch.
/// `ret_var`, when given, is the variable that receives returned values
/// (function inlining); handlers pass `None` and returns just cut the path.
fn normalize_returns(b: Block, ret_var: Option<&str>) -> Block {
    let span = b.span;
    Block::new(normalize_stmts(b.stmts, ret_var), span)
}

fn normalize_stmts(stmts: Vec<Stmt>, ret_var: Option<&str>) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut stmts = std::collections::VecDeque::from(stmts);
    while let Some(s) = stmts.pop_front() {
        match s.kind {
            StmtKind::Return(val) => {
                if let (Some(rv), Some(e)) = (ret_var, val) {
                    out.push(Stmt {
                        span: s.span,
                        kind: StmtKind::Assign {
                            name: Ident::synth(rv),
                            value: e,
                        },
                    });
                }
                // Anything after a return is unreachable (checker warned).
                return out;
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let then_returns = may_return(&then_blk);
                let else_returns = else_blk.as_ref().is_some_and(may_return);
                if (then_returns || else_returns) && !stmts.is_empty() {
                    let rest: Vec<Stmt> = stmts.drain(..).collect();
                    // Push the continuation into each branch; branches that
                    // return get normalized with the return swallowed.
                    let then2 = {
                        let mut ss = then_blk.stmts;
                        if !block_definitely_returns(&ss) {
                            ss.extend(rest.iter().cloned());
                        }
                        normalize_stmts(ss, ret_var)
                    };
                    let else2 = {
                        let mut ss = else_blk.map(|b| b.stmts).unwrap_or_default();
                        if !block_definitely_returns(&ss) {
                            ss.extend(rest.iter().cloned());
                        }
                        normalize_stmts(ss, ret_var)
                    };
                    let span = s.span;
                    out.push(Stmt {
                        span,
                        kind: StmtKind::If {
                            cond,
                            then_blk: Block::new(then2, span),
                            else_blk: Some(Block::new(else2, span)),
                        },
                    });
                    return out;
                }
                let span = s.span;
                out.push(Stmt {
                    span,
                    kind: StmtKind::If {
                        cond,
                        then_blk: normalize_returns(then_blk, ret_var),
                        else_blk: else_blk.map(|e| normalize_returns(e, ret_var)),
                    },
                });
            }
            other => out.push(Stmt {
                kind: other,
                span: s.span,
            }),
        }
    }
    out
}

fn may_return(b: &Block) -> bool {
    b.stmts.iter().any(|s| match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::If {
            then_blk, else_blk, ..
        } => may_return(then_blk) || else_blk.as_ref().is_some_and(may_return),
        _ => false,
    })
}

fn block_definitely_returns(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            block_definitely_returns(&then_blk.stmts)
                && else_blk
                    .as_ref()
                    .is_some_and(|e| block_definitely_returns(&e.stmts))
        }
        _ => false,
    })
}

/// A symbolic event value tracked during elaboration.
#[derive(Debug, Clone)]
struct EventSpec {
    event_id: usize,
    event_name: String,
    args: Vec<Operand>,
    delay: Option<Operand>,
    location: LocSpec,
}

/// What a source-level name means during elaboration.
#[derive(Debug, Clone)]
enum Binding {
    Value(Operand),
    Array(GlobalId),
    Event(EventSpec),
}

/// Substitution environment: scoped map from source names to bindings.
#[derive(Debug, Clone, Default)]
struct Env {
    map: HashMap<String, Binding>,
}

impl Env {
    fn bind(&mut self, name: &str, b: Binding) {
        self.map.insert(name.to_string(), b);
    }

    fn get(&self, name: &str) -> Option<&Binding> {
        self.map.get(name)
    }
}

struct Elab<'p, 'd> {
    prog: &'p CheckedProgram,
    tables: Vec<AtomicTable>,
    /// Current control-path guard.
    guard: Vec<Cond>,
    tmp: usize,
    handler: String,
    diags: &'d mut Diagnostics,
}

impl Elab<'_, '_> {
    fn fresh(&mut self, hint: &str) -> String {
        self.tmp += 1;
        format!("{}__{}_{}", self.handler, hint, self.tmp)
    }

    fn emit(&mut self, op: AtomicOp) {
        let id = self.tables.len();
        self.tables.push(AtomicTable {
            id,
            handler: self.handler.clone(),
            op,
            guard: self.guard.clone(),
        });
    }

    fn err(&mut self, msg: impl Into<String>, span: lucid_frontend::Span) {
        self.diags.push(Diagnostic::error(msg, span));
    }

    // ------------------------------------------------------------- blocks

    fn block(&mut self, b: &Block, env: &mut Env) {
        for s in &b.stmts {
            self.stmt(s, env);
        }
    }

    fn stmt(&mut self, s: &Stmt, env: &mut Env) {
        match &s.kind {
            StmtKind::Local { name, init, .. } => {
                if let Some(spec) = self.try_event_expr(init, env) {
                    env.bind(&name.name, Binding::Event(spec));
                    return;
                }
                let dst = self.fresh(&name.name);
                self.flatten_into(&dst, init, env);
                env.bind(&name.name, Binding::Value(Operand::Var(dst)));
            }
            StmtKind::Assign { name, value } => {
                if let Some(spec) = self.try_event_expr(value, env) {
                    env.bind(&name.name, Binding::Event(spec));
                    return;
                }
                // In-place update: write through to the variable's current
                // storage so later reads (possibly on other paths) see it.
                let dst = match env.get(&name.name) {
                    Some(Binding::Value(Operand::Var(v))) => v.clone(),
                    _ => {
                        // First write to e.g. an inlined return slot.
                        let v = self.fresh(&name.name);
                        env.bind(&name.name, Binding::Value(Operand::Var(v.clone())));
                        v
                    }
                };
                self.flatten_into(&dst, value, env);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                // Directly-matchable conditions (`var cmp const`, Figure 7's
                // branch table keying on `proto`) become guard predicates
                // without materializing a temp.
                let gcond = match self.direct_cond(cond, env) {
                    Some(g) => g,
                    None => {
                        let c = self.flatten(cond, env);
                        match c {
                            Operand::Var(v) => Cond {
                                var: v,
                                cmp: BinOp::Neq,
                                value: 0,
                            },
                            Operand::Const(k) => {
                                // Constant-folded branch: elaborate only the
                                // taken side.
                                if k != 0 {
                                    self.block(then_blk, env);
                                } else if let Some(e) = else_blk {
                                    self.block(e, env);
                                }
                                return;
                            }
                        }
                    }
                };
                self.guard.push(gcond.clone());
                self.block(then_blk, env);
                self.guard.pop();
                if let Some(e) = else_blk {
                    self.guard.push(gcond.negate());
                    self.block(e, env);
                    self.guard.pop();
                }
            }
            StmtKind::Generate(e) | StmtKind::MGenerate(e) => {
                let Some(spec) = self.try_event_expr(e, env) else {
                    self.err(
                        "generate requires an event constructed on this control path",
                        e.span,
                    );
                    return;
                };
                self.emit(AtomicOp::Generate {
                    event_id: spec.event_id,
                    event_name: spec.event_name,
                    args: spec.args,
                    delay: spec.delay,
                    location: spec.location,
                });
            }
            StmtKind::Return(_) => {
                // normalize_returns removed all returns; a stray one here is
                // a handler's bare `return;` in tail position — a no-op.
            }
            StmtKind::Printf { .. } => {
                // Interpreter-only; generates no hardware.
            }
            StmtKind::Expr(e) => {
                let _ = self.flatten(e, env);
            }
        }
    }

    // -------------------------------------------------------- expressions

    /// If `e` is event-typed, build its symbolic spec.
    fn try_event_expr(&mut self, e: &Expr, env: &mut Env) -> Option<EventSpec> {
        match &e.kind {
            ExprKind::Var(id) => match env.get(&id.name) {
                Some(Binding::Event(spec)) => Some(spec.clone()),
                _ => None,
            },
            ExprKind::Call { callee, args } => {
                let ev = self.prog.info.event(&callee.name)?;
                let (event_id, event_name) = (ev.id, ev.name.clone());
                let ops: Vec<Operand> = args.iter().map(|a| self.flatten(a, env)).collect();
                Some(EventSpec {
                    event_id,
                    event_name,
                    args: ops,
                    delay: None,
                    location: LocSpec::Here,
                })
            }
            ExprKind::BuiltinCall { builtin, args, .. } => match builtin {
                Builtin::EventDelay => {
                    let mut spec = self.try_event_expr(&args[0], env)?;
                    spec.delay = Some(self.flatten(&args[1], env));
                    Some(spec)
                }
                Builtin::EventLocate => {
                    let mut spec = self.try_event_expr(&args[0], env)?;
                    spec.location = LocSpec::Switch(self.flatten(&args[1], env));
                    Some(spec)
                }
                Builtin::EventMLocate => {
                    let mut spec = self.try_event_expr(&args[0], env)?;
                    match &args[1].kind {
                        ExprKind::Var(g) => match self.prog.info.groups.get(&g.name) {
                            Some(gi) => {
                                spec.location = LocSpec::Group(gi.members.clone());
                            }
                            None => {
                                self.err(
                                    format!("`{}` is not a const group", g.name),
                                    args[1].span,
                                );
                            }
                        },
                        _ => self.err(
                            "Event.mlocate requires a named const group in the backend",
                            args[1].span,
                        ),
                    }
                    Some(spec)
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// If `cond` is `var cmp const` (either side), build the match-rule
    /// guard directly. Returns `None` for anything needing computation.
    fn direct_cond(&mut self, cond: &Expr, env: &mut Env) -> Option<Cond> {
        // Bare boolean variable / its negation: match the 0/1 temp itself.
        match &cond.kind {
            ExprKind::Var(id) => {
                if let Some(Binding::Value(Operand::Var(v))) = env.get(&id.name) {
                    return Some(Cond {
                        var: v.clone(),
                        cmp: BinOp::Neq,
                        value: 0,
                    });
                }
            }
            ExprKind::Unary { op: UnOp::Not, arg } => {
                if let ExprKind::Var(id) = &arg.kind {
                    if let Some(Binding::Value(Operand::Var(v))) = env.get(&id.name) {
                        return Some(Cond {
                            var: v.clone(),
                            cmp: BinOp::Eq,
                            value: 0,
                        });
                    }
                }
            }
            _ => {}
        }
        let ExprKind::Binary { op, lhs, rhs } = &cond.kind else {
            return None;
        };
        if !op.is_comparison() {
            return None;
        }
        let lc = self
            .prog
            .info
            .eval_const(lhs)
            .ok()
            .filter(|_| self.is_const_expr(lhs));
        let rc = self
            .prog
            .info
            .eval_const(rhs)
            .ok()
            .filter(|_| self.is_const_expr(rhs));
        let (var_e, cmp, value) = match (lc, rc) {
            (None, Some(v)) => (lhs, *op, v),
            (Some(v), None) => {
                // Mirror: `5 < x` is `x > 5`.
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Ge => BinOp::Le,
                    o => *o,
                };
                (rhs, flipped, v)
            }
            _ => return None,
        };
        match &var_e.kind {
            ExprKind::Var(id) => match env.get(&id.name) {
                Some(Binding::Value(Operand::Var(v))) => Some(Cond {
                    var: v.clone(),
                    cmp,
                    value,
                }),
                _ => None,
            },
            _ => None,
        }
    }

    fn is_const_expr(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Var(id) => self.prog.info.consts.contains_key(&id.name),
            ExprKind::Int { .. } | ExprKind::Bool(_) => true,
            ExprKind::Binary { lhs, rhs, .. } => self.is_const_expr(lhs) && self.is_const_expr(rhs),
            ExprKind::Unary { arg, .. } | ExprKind::Cast { arg, .. } => self.is_const_expr(arg),
            _ => false,
        }
    }

    /// Flatten `e` into an operand, emitting tables for intermediates.
    fn flatten(&mut self, e: &Expr, env: &mut Env) -> Operand {
        // Constant folding first: anything the front end can evaluate
        // becomes an immediate.
        if let Ok(v) = self.prog.info.eval_const(e) {
            if !matches!(e.kind, ExprKind::Var(_)) || self.is_const_name(e) {
                return Operand::Const(v);
            }
        }
        match &e.kind {
            ExprKind::Int { value, .. } => Operand::Const(*value),
            ExprKind::Bool(b) => Operand::Const(*b as u64),
            ExprKind::Var(id) => {
                if id.name == "SELF" {
                    return Operand::Var("lucid_self".into());
                }
                match env.get(&id.name) {
                    Some(Binding::Value(op)) => op.clone(),
                    Some(Binding::Array(_) | Binding::Event(_)) | None => {
                        // Arrays/events are consumed by their special
                        // contexts; reaching here is a checker-guaranteed
                        // impossibility for valid programs.
                        Operand::Var(id.name.clone())
                    }
                }
            }
            _ => {
                let dst = self.fresh("t");
                self.flatten_into(&dst, e, env);
                Operand::Var(dst)
            }
        }
    }

    fn is_const_name(&self, e: &Expr) -> bool {
        matches!(&e.kind, ExprKind::Var(id) if self.prog.info.consts.contains_key(&id.name))
    }

    /// Flatten `e`, directing its result into `dst`.
    fn flatten_into(&mut self, dst: &str, e: &Expr, env: &mut Env) {
        if let Ok(v) = self.prog.info.eval_const(e) {
            self.emit(AtomicOp::Mov {
                dst: dst.into(),
                src: Operand::Const(v),
            });
            return;
        }
        match &e.kind {
            ExprKind::Int { value, .. } => {
                self.emit(AtomicOp::Mov {
                    dst: dst.into(),
                    src: Operand::Const(*value),
                });
            }
            ExprKind::Bool(b) => {
                self.emit(AtomicOp::Mov {
                    dst: dst.into(),
                    src: Operand::Const(*b as u64),
                });
            }
            ExprKind::Var(_) => {
                let src = self.flatten(e, env);
                self.emit(AtomicOp::Mov {
                    dst: dst.into(),
                    src,
                });
            }
            ExprKind::Unary { op, arg } => {
                let a = self.flatten(arg, env);
                self.emit(AtomicOp::Un {
                    dst: dst.into(),
                    op: *op,
                    a,
                });
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let Some((op, lhs, rhs)) = self.lower_binop(*op, lhs, rhs, e) else {
                    return;
                };
                let a = self.flatten(&lhs, env);
                let b = self.flatten(&rhs, env);
                // Logical && / || over 0/1 temps lower to bitwise ops.
                let op = match op {
                    BinOp::And => BinOp::BitAnd,
                    BinOp::Or => BinOp::BitOr,
                    o => o,
                };
                self.emit(AtomicOp::Bin {
                    dst: dst.into(),
                    op,
                    a,
                    b,
                });
            }
            ExprKind::Cast { width, arg } => {
                // A cast is a PHV move with truncation: one action slot.
                let a = self.flatten(arg, env);
                self.emit(AtomicOp::Bin {
                    dst: dst.into(),
                    op: BinOp::BitAnd,
                    a,
                    b: Operand::Const(lucid_check::mask(u64::MAX, *width)),
                });
            }
            ExprKind::Hash { width, args } => {
                let seed = match self.prog.info.eval_const(&args[0]) {
                    Ok(s) => s,
                    Err(_) => {
                        self.err(
                            "hash seed must be a compile-time constant (it configures \
                             the hash engine's polynomial)",
                            args[0].span,
                        );
                        0
                    }
                };
                let ops: Vec<Operand> = args[1..].iter().map(|a| self.flatten(a, env)).collect();
                self.emit(AtomicOp::Hash {
                    dst: dst.into(),
                    width: *width,
                    seed,
                    args: ops,
                });
            }
            ExprKind::Call { callee, args } => {
                if self.prog.info.event(&callee.name).is_some() {
                    self.err("event values cannot be stored in integer variables", e.span);
                    return;
                }
                self.inline_call(dst, callee, args, env, e.span);
            }
            ExprKind::BuiltinCall { builtin, args, .. } => {
                self.builtin_into(Some(dst), *builtin, args, env, e.span);
            }
        }
    }

    /// Rewrite `* / %` into shifts/masks when a side is a power-of-two
    /// constant; reject otherwise (no multiplier in the match pipeline).
    fn lower_binop(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        whole: &Expr,
    ) -> Option<(BinOp, Expr, Expr)> {
        if !matches!(op, BinOp::Mul | BinOp::Div | BinOp::Mod) {
            return Some((op, lhs.clone(), rhs.clone()));
        }
        let rhs_const = self.prog.info.eval_const(rhs).ok();
        let lhs_const = self.prog.info.eval_const(lhs).ok();
        let (var_side, k) = match (lhs_const, rhs_const) {
            (_, Some(k)) => (lhs.clone(), k),
            (Some(k), _) if op == BinOp::Mul => (rhs.clone(), k),
            _ => {
                self.err(
                    format!(
                        "`{}` of two run-time values cannot execute in a match-action \
                         ALU; restructure the computation",
                        op.symbol()
                    ),
                    whole.span,
                );
                return None;
            }
        };
        if !k.is_power_of_two() {
            self.err(
                format!(
                    "`{} {k}` is only supported when the constant is a power of two \
                     (lowered to a shift)",
                    op.symbol()
                ),
                whole.span,
            );
            return None;
        }
        let sh = k.trailing_zeros() as u64;
        let shift_expr = Expr::synth_int(sh);
        Some(match op {
            BinOp::Mul => (BinOp::Shl, var_side, shift_expr),
            BinOp::Div => (BinOp::Shr, var_side, shift_expr),
            BinOp::Mod => (BinOp::BitAnd, var_side, Expr::synth_int(k - 1)),
            _ => unreachable!(),
        })
    }

    fn inline_call(
        &mut self,
        dst: &str,
        callee: &Ident,
        args: &[Expr],
        env: &mut Env,
        span: lucid_frontend::Span,
    ) {
        let Some((_, params, body)) = self.prog.fun_body(&callee.name) else {
            self.err(format!("unknown function `{}`", callee.name), span);
            return;
        };
        let (params, body) = (params.clone(), body.clone());
        let mut inner = Env::default();
        for (p, a) in params.iter().zip(args) {
            match p.ty {
                Ty::Array(_) => {
                    let gid = self.array_of(a, env);
                    inner.bind(&p.name.name, Binding::Array(gid));
                }
                _ => {
                    let op = self.flatten(a, env);
                    inner.bind(&p.name.name, Binding::Value(op));
                }
            }
        }
        let body = normalize_returns(body, Some(dst));
        // The return slot starts live so Assign writes through.
        inner.bind(dst, Binding::Value(Operand::Var(dst.to_string())));
        self.block(&body, &mut inner);
    }

    /// Resolve an array-position expression to a global id, through any
    /// in-scope array parameter bindings.
    fn array_of(&mut self, e: &Expr, env: &Env) -> GlobalId {
        match &e.kind {
            ExprKind::Var(id) => match env.get(&id.name) {
                Some(Binding::Array(gid)) => *gid,
                _ => self.prog.info.globals_by_name[&id.name],
            },
            _ => unreachable!("checked: array args are names"),
        }
    }

    fn builtin_into(
        &mut self,
        dst: Option<&str>,
        builtin: Builtin,
        args: &[Expr],
        env: &mut Env,
        span: lucid_frontend::Span,
    ) {
        match builtin {
            Builtin::ArrayGet
            | Builtin::ArrayGetm
            | Builtin::ArraySet
            | Builtin::ArraySetm
            | Builtin::ArrayUpdate => {
                let array = self.array_of(&args[0], env);
                let index = self.flatten(&args[1], env);
                let memname = |e: &Expr| match &e.kind {
                    ExprKind::Var(id) => id.name.clone(),
                    _ => unreachable!("checked: memop name"),
                };
                let kind = match builtin {
                    Builtin::ArrayGet => MemKind::Get,
                    Builtin::ArrayGetm => MemKind::Getm {
                        memop: memname(&args[2]),
                        arg: self.flatten(&args[3], env),
                    },
                    Builtin::ArraySet => MemKind::Set {
                        value: self.flatten(&args[2], env),
                    },
                    Builtin::ArraySetm => MemKind::Setm {
                        memop: memname(&args[2]),
                        arg: self.flatten(&args[3], env),
                    },
                    Builtin::ArrayUpdate => MemKind::Update {
                        getop: memname(&args[2]),
                        getarg: self.flatten(&args[3], env),
                        setop: memname(&args[4]),
                        setarg: self.flatten(&args[5], env),
                    },
                    _ => unreachable!(),
                };
                let dst = if kind.reads() {
                    dst.map(String::from)
                } else {
                    None
                };
                self.emit(AtomicOp::Mem {
                    dst,
                    array,
                    index,
                    kind,
                });
            }
            Builtin::EventDelay | Builtin::EventLocate | Builtin::EventMLocate => {
                self.err(
                    "event combinators produce event values; bind them with \
                     `event x = ..;` and `generate x;`",
                    span,
                );
            }
            Builtin::SysTime => {
                if let Some(d) = dst {
                    self.emit(AtomicOp::Mov {
                        dst: d.into(),
                        src: Operand::Var("lucid_ts".into()),
                    });
                }
            }
            Builtin::SysSelf => {
                if let Some(d) = dst {
                    self.emit(AtomicOp::Mov {
                        dst: d.into(),
                        src: Operand::Var("lucid_self".into()),
                    });
                }
            }
            Builtin::SysPort => {
                if let Some(d) = dst {
                    self.emit(AtomicOp::Mov {
                        dst: d.into(),
                        src: Operand::Var("lucid_port".into()),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_check::parse_and_check;

    fn elab(src: &str) -> Vec<HandlerIr> {
        let prog = parse_and_check(src).expect("checks");
        elaborate(&prog).expect("elaborates")
    }

    #[test]
    fn counter_handler_lowered_to_one_mem_table() {
        let hs = elab(
            r#"
            global cts = new Array<<32>>(8);
            memop plus(int m, int x) { return m + x; }
            event pkt(int idx);
            handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
            "#,
        );
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].tables.len(), 1);
        assert!(matches!(hs[0].tables[0].op, AtomicOp::Mem { .. }));
        assert_eq!(hs[0].unoptimized_depth, 1);
    }

    #[test]
    fn empty_handler_elaborates_to_empty_ir() {
        // A handler with no statements is legal Lucid (a sink that only
        // consumes its event); it must produce an empty table list, not
        // trip any nonempty-iterator assumption downstream.
        let hs = elab("event noop(); handle noop() { }");
        assert_eq!(hs.len(), 1);
        assert!(hs[0].tables.is_empty());
        assert_eq!(hs[0].unoptimized_depth, 0);
        let max_guard = hs[0].tables.iter().map(|t| t.guard.len()).max();
        assert_eq!(max_guard, None, "no tables, no guards — and no panic");
    }

    #[test]
    fn effectless_bodies_elaborate_to_empty_ir() {
        // Bodies whose statements generate no hardware (printf, a bare
        // return, a branch around nothing) reduce to zero tables too.
        for body in [
            "{ }",
            "{ printf(\"seen %d\", x); }",
            "{ return; }",
            "{ if (x == 0) { } }",
            "{ if (x == 0) { } else { printf(\"odd\"); } }",
        ] {
            let hs = elab(&format!("event go(int x); handle go(int x) {body}"));
            assert!(
                hs[0].tables.is_empty(),
                "body {body} left tables: {:#?}",
                hs[0].tables
            );
        }
    }

    #[test]
    fn figure6_count_pkt_depths() {
        // The paper's Figure 6 handler: 7 tables on the longest unoptimized
        // path (nexthops_get, if, nested if, idx write, pcts, if, hcts).
        let hs = elab(
            r#"
            const int NUM_PORTS = 64;
            const int NUM_PORTS_X2 = 128;
            const int TCP = 6;
            const int UDP = 17;
            global nexthops = new Array<<32>>(256);
            global pcts = new Array<<32>>(192);
            global hcts = new Array<<32>>(256);
            memop plus(int cur, int x) { return cur + x; }
            event count_pkt(int dst, int proto);
            handle count_pkt(int dst, int proto) {
                int idx = Array.get(nexthops, dst);
                if (proto != TCP) {
                    if (proto == UDP) { idx = idx + NUM_PORTS; }
                    else { idx = idx + NUM_PORTS_X2; }
                }
                Array.setm(pcts, idx, plus, 1);
                if (proto == TCP) {
                    Array.setm(hcts, dst, plus, 1);
                }
            }
            "#,
        );
        let h = &hs[0];
        assert_eq!(h.unoptimized_depth, 7, "Figure 6(1) longest path");
        // Three memory tables.
        let mems = h.tables.iter().filter(|t| t.op.salus() == 1).count();
        assert_eq!(mems, 3);
        // The nested idx updates carry two-condition guards.
        let max_guard = h.tables.iter().map(|t| t.guard.len()).max().unwrap();
        assert_eq!(max_guard, 2);
    }

    #[test]
    fn function_inlining_substitutes_arrays() {
        let hs = elab(
            r#"
            global a = new Array<<32>>(8);
            global b = new Array<<32>>(8);
            memop plus(int m, int x) { return m + x; }
            fun int bump(Array<<32>> arr, int i) {
                return Array.getm(arr, i, plus, 1);
            }
            event go(int i);
            handle go(int i) {
                int x = bump(a, i);
                int y = bump(b, i);
            }
            "#,
        );
        let arrays: Vec<GlobalId> = hs[0].tables.iter().filter_map(|t| t.op.array()).collect();
        assert_eq!(arrays, vec![GlobalId(0), GlobalId(1)]);
    }

    #[test]
    fn early_return_normalizes_into_branches() {
        let hs = elab(
            r#"
            event go(int x);
            fun int pick(int x) {
                if (x == 0) { return 10; }
                return 20;
            }
            handle go(int x) {
                int y = pick(x);
                generate go(y);
            }
            "#,
        );
        let h = &hs[0];
        // Both constants must be written, under opposite guards.
        let movs: Vec<&AtomicTable> = h
            .tables
            .iter()
            .filter(|t| {
                matches!(
                    t.op,
                    AtomicOp::Mov {
                        src: Operand::Const(_),
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(movs.len(), 2, "{:#?}", h.tables);
        assert!(movs[0].excludes(movs[1]), "branch writes must be exclusive");
    }

    #[test]
    fn generate_with_combinators() {
        let hs = elab(
            r#"
            const group G = {2, 3};
            event c(int v);
            event go(int v);
            handle go(int v) {
                event e = Event.delay(Event.mlocate(c(v), G), 100);
                mgenerate e;
            }
            "#,
        );
        let g = hs[0]
            .tables
            .iter()
            .find_map(|t| match &t.op {
                AtomicOp::Generate {
                    delay, location, ..
                } => Some((delay.clone(), location.clone())),
                _ => None,
            })
            .expect("a generate op");
        assert_eq!(g.0, Some(Operand::Const(100)));
        assert_eq!(g.1, LocSpec::Group(vec![2, 3]));
    }

    #[test]
    fn constant_branches_fold() {
        let hs = elab(
            r#"
            const bool FEATURE = false;
            global a = new Array<<32>>(4);
            event go(int x);
            handle go(int x) {
                if (FEATURE) { Array.set(a, 0, x); }
            }
            "#,
        );
        assert!(hs[0].tables.is_empty(), "disabled feature should vanish");
    }

    #[test]
    fn multiply_by_power_of_two_becomes_shift() {
        let hs = elab(
            r#"
            event go(int x);
            event out(int x);
            handle go(int x) { generate out(x * 8); }
            "#,
        );
        let has_shift = hs[0].tables.iter().any(|t| {
            matches!(
                t.op,
                AtomicOp::Bin {
                    op: BinOp::Shl,
                    b: Operand::Const(3),
                    ..
                }
            )
        });
        assert!(has_shift, "{:#?}", hs[0].tables);
    }

    #[test]
    fn multiply_of_variables_rejected() {
        let prog = parse_and_check(
            r#"
            event go(int x, int y);
            event out(int x);
            handle go(int x, int y) { generate out(x * y); }
            "#,
        )
        .unwrap();
        let err = elaborate(&prog).unwrap_err();
        assert!(
            err.items[0].message.contains("match-action ALU"),
            "{}",
            err.items[0]
        );
    }

    #[test]
    fn hash_requires_const_seed() {
        let prog = parse_and_check(
            r#"
            event go(int x);
            event out(int x);
            handle go(int x) { generate out(hash<<32>>(x, x)); }
            "#,
        )
        .unwrap();
        let err = elaborate(&prog).unwrap_err();
        assert!(err.items[0].message.contains("seed"), "{}", err.items[0]);
    }

    #[test]
    fn printf_emits_no_tables() {
        let hs = elab(r#"event go(int x); handle go(int x) { printf("%d", x); }"#);
        assert!(hs[0].tables.is_empty());
    }

    #[test]
    fn guards_nest_with_negation() {
        let hs = elab(
            r#"
            event go(int x);
            event a(); event b();
            handle go(int x) {
                if (x == 1) { generate a(); } else { generate b(); }
            }
            "#,
        );
        let gens: Vec<&AtomicTable> = hs[0]
            .tables
            .iter()
            .filter(|t| matches!(t.op, AtomicOp::Generate { .. }))
            .collect();
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[0].guard.len(), 1);
        assert_eq!(gens[0].guard[0].cmp, BinOp::Eq);
        assert_eq!(gens[1].guard[0].cmp, BinOp::Neq);
        assert_eq!(gens[0].guard[0].var, gens[1].guard[0].var);
    }
}
