//! # lucid-core
//!
//! The umbrella crate for this Rust reproduction of *Lucid: A Language for
//! Control in the Data Plane* (SIGCOMM 2021). It re-exports the pipeline
//! stages and provides the staged driver API:
//!
//! * [`Compiler`] — a reusable configuration (target [`PipelineSpec`],
//!   [`LayoutOptions`], optimization toggle, [`CheckOptions`]);
//! * [`Build`] — a per-source compilation session with lazily computed,
//!   cached stage artifacts: [`ast`](Build::ast), [`checked`](Build::checked),
//!   [`handlers`](Build::handlers), [`layout`](Build::layout),
//!   [`p4`](Build::p4). Callers pay only for the stages they ask for, and
//!   can re-run the backend under a different target without re-parsing
//!   ([`reconfigure`](Build::reconfigure));
//! * structured diagnostics: every failure is a set of
//!   [`Diagnostic`]s with severity, stable
//!   code, and spans, rendered rustc-style
//!   ([`render_diagnostics`](Build::render_diagnostics)) or as JSON
//!   ([`diagnostics_json`](Build::diagnostics_json)) against the session's
//!   owned [`SourceMap`];
//! * [`Interp`] re-export — the event-driven network simulator (§3).
//!
//! ```
//! use lucid_core::Compiler;
//!
//! let mut build = Compiler::new().build("counter.lucid", r#"
//!     global cts = new Array<<32>>(64);
//!     memop plus(int m, int x) { return m + x; }
//!     event pkt(int idx);
//!     handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
//! "#);
//! let stages = build.layout().unwrap().total_stages;
//! assert!(stages <= 12);
//! assert!(build.p4().unwrap().source.contains("RegisterAction"));
//! ```
//!
//! Errors accumulate across declarations instead of stopping at the first:
//!
//! ```
//! use lucid_core::Compiler;
//!
//! let mut bad = Compiler::new().build("bad.lucid", r#"
//!     memop one(int m, int x) { return m * x; }
//!     memop two(int m, int x) { return x + x; }
//! "#);
//! assert!(bad.checked().is_err());
//! let diags = bad.diagnostics();
//! assert!(diags.error_count() >= 2);
//! assert!(bad.render_diagnostics().contains("error[E03"));
//! assert!(bad.diagnostics_json().starts_with('['));
//! ```

#![forbid(unsafe_code)]

pub use lucid_backend as backend;
pub use lucid_check as check;
pub use lucid_frontend as frontend;
pub use lucid_interp as interp;
pub use lucid_tofino as tofino;

pub use lucid_backend::{BackendOptions, Compiled, HandlerIr, Layout, LayoutOptions, P4Program};
pub use lucid_check::{Analysis, CheckOptions, CheckedProgram};
pub use lucid_frontend::{Diagnostic, Diagnostics, Program, SourceMap};
#[allow(deprecated)]
pub use lucid_interp::SimOverrides;
pub use lucid_interp::{
    disassemble, disassemble_opt, handle_line, json_escape, run_scenario, run_scenario_with,
    serve_lines, ArgDist, CheckHost, ClassHists, ClassMetrics, CmpOp, Engine, ErrorKind,
    EventSource, ExecMode, FaultAt, GenSpec, Histogram, Interp, InterpError, InterpFault,
    MetricExpect, MetricSel, Metrics, Mismatch, NetConfig, OptLevel, Outcome, Phase, ProgramHost,
    Scenario, ScenarioError, ServeError, ServeState, SessionStatus, SimOptions, SimReport,
    SimRunError, SimSession, SnapError, SourcedEvent, SwapStats, Violation, Workload,
};
pub use lucid_tofino::PipelineSpec;

use std::collections::BTreeMap;
use std::sync::Arc;

/// A reusable compiler configuration. `Compiler` is a builder: chain
/// [`target`](Compiler::target), [`layout`](Compiler::layout),
/// [`optimize`](Compiler::optimize), and
/// [`check_options`](Compiler::check_options), then call
/// [`build`](Compiler::build) once per source file to open a session.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    backend: BackendOptions,
    check: CheckOptions,
}

impl Compiler {
    /// Default configuration: the Tofino target, default layout options,
    /// optimizations on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile against `spec` instead of the default Tofino pipeline.
    pub fn target(mut self, spec: PipelineSpec) -> Self {
        self.backend.target = spec;
        self
    }

    /// Override the layout knobs (rearrangement, merge budget, dispatcher).
    pub fn layout(mut self, opts: LayoutOptions) -> Self {
        self.backend.layout = opts;
        self
    }

    /// Toggle the IR clean-up pass (copy propagation + dead-table
    /// elimination). On by default.
    pub fn optimize(mut self, on: bool) -> Self {
        self.backend.optimize = on;
        self
    }

    /// Override the semantic-analysis options.
    pub fn check_options(mut self, opts: CheckOptions) -> Self {
        self.check = opts;
        self
    }

    /// Open a compilation session for one source file. Nothing runs until
    /// a stage artifact is requested.
    pub fn build(&self, name: &str, src: &str) -> Build {
        Build {
            cfg: self.clone(),
            sm: SourceMap::new(name, src),
            stats: BuildStats::default(),
            warnings: Diagnostics::new(),
            ast: None,
            checked: None,
            checked_arc: None,
            lint: None,
            handlers: None,
            layout: None,
            p4: None,
        }
    }
}

/// How many times each stage actually ran in a [`Build`] session. Stage
/// artifacts are cached, so repeated accessor calls do not re-run earlier
/// stages; tests assert on these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    pub parse_runs: u32,
    pub check_runs: u32,
    pub lint_runs: u32,
    pub elaborate_runs: u32,
    pub layout_runs: u32,
    pub p4_runs: u32,
    pub interp_runs: u32,
    pub verify_runs: u32,
}

/// A per-source compilation session. Stage artifacts are computed on first
/// access and cached; an error in any stage is also cached and returned
/// from every later stage without recomputation.
///
/// The session owns the [`SourceMap`], so diagnostics from any stage render
/// against the original source without the caller re-supplying it.
pub struct Build {
    cfg: Compiler,
    sm: SourceMap,
    stats: BuildStats,
    /// Non-fatal diagnostics (warnings) accumulated by successful stages.
    warnings: Diagnostics,
    ast: Option<Result<Program, Diagnostics>>,
    checked: Option<Result<CheckedProgram, Diagnostics>>,
    /// Shared handle over the check artifact, created on first
    /// [`Build::checked_arc`] call. Long-lived simulation sessions hold
    /// the program this way; caching keeps every session and swap epoch
    /// of one build sharing a single allocation.
    checked_arc: Option<Arc<CheckedProgram>>,
    lint: Option<Result<Diagnostics, Diagnostics>>,
    handlers: Option<Result<Vec<HandlerIr>, Diagnostics>>,
    layout: Option<Result<Layout, Diagnostics>>,
    p4: Option<Result<P4Program, Diagnostics>>,
}

impl Build {
    /// The session's source map (file name + text + line index).
    pub fn source_map(&self) -> &SourceMap {
        &self.sm
    }

    /// The configuration this session compiles under.
    pub fn config(&self) -> &Compiler {
        &self.cfg
    }

    /// Per-stage execution counters (see [`BuildStats`]).
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Parse stage: the AST.
    pub fn ast(&mut self) -> Result<&Program, Diagnostics> {
        self.ensure_ast();
        as_result(self.ast.as_ref())
    }

    /// Semantic analysis stage: symbols, memop validation, and the ordered
    /// type-and-effect system, with diagnostics accumulated across
    /// declarations.
    pub fn checked(&mut self) -> Result<&CheckedProgram, Diagnostics> {
        self.ensure_checked();
        as_result(self.checked.as_ref())
    }

    /// The check artifact as a shared handle — the form long-lived
    /// simulation sessions hold. Cached: every call (and every session
    /// opened from this build) shares one allocation until
    /// [`Build::reconfigure`] invalidates the check stage.
    pub fn checked_arc(&mut self) -> Result<Arc<CheckedProgram>, Diagnostics> {
        self.ensure_checked();
        match self.checked.as_ref().expect("ensured") {
            Ok(p) => {
                if self.checked_arc.is_none() {
                    self.checked_arc = Some(Arc::new(p.clone()));
                }
                Ok(Arc::clone(self.checked_arc.as_ref().expect("just set")))
            }
            Err(ds) => Err(ds.clone()),
        }
    }

    /// Elaboration stage: per-handler atomic tables (optimized when the
    /// session's configuration says so).
    pub fn handlers(&mut self) -> Result<&[HandlerIr], Diagnostics> {
        self.ensure_handlers();
        as_result(self.handlers.as_ref()).map(Vec::as_slice)
    }

    /// Layout stage: table placement against the session's target.
    pub fn layout(&mut self) -> Result<&Layout, Diagnostics> {
        self.ensure_layout();
        as_result(self.layout.as_ref())
    }

    /// Code-generation stage: the P4_16 program.
    pub fn p4(&mut self) -> Result<&P4Program, Diagnostics> {
        self.ensure_p4();
        as_result(self.p4.as_ref())
    }

    /// Simulation stage: execute a [`Scenario`] in the interpreter against
    /// this session's checked program, under `opts` (engine, executor,
    /// opt level, workers, workload knobs — `SimOptions::default()`
    /// overrides nothing). Lazy like the other stages about its
    /// prerequisite — the first call pays for parse + check, later calls
    /// reuse the cached artifact — but each invocation runs the
    /// simulation afresh (a run is effectful, so its report is not
    /// cached). Runs counted in [`BuildStats::interp_runs`].
    pub fn interp(
        &mut self,
        scenario: &Scenario,
        opts: &SimOptions,
    ) -> Result<SimReport, SimError> {
        self.stats.interp_runs += 1;
        let prog = self.checked_arc().map_err(SimError::Diagnostics)?;
        let mut session = SimSession::open_arc(prog, scenario, opts).map_err(SimError::from)?;
        session.drain().map_err(SimError::from)
    }

    /// Open a resumable simulation session against this session's checked
    /// program — the serve-layer entry point. The returned
    /// [`SimSession`] owns a shared handle to the check artifact, so the
    /// build can keep compiling (or hot-swap) while the session runs.
    pub fn session(
        &mut self,
        scenario: &Scenario,
        opts: &SimOptions,
    ) -> Result<SimSession, SimError> {
        let prog = self.checked_arc().map_err(SimError::Diagnostics)?;
        SimSession::open_arc(prog, scenario, opts).map_err(SimError::from)
    }

    #[deprecated(note = "use `Build::interp(scenario, &SimOptions::new().engine(..).exec(..))`")]
    pub fn interp_with(
        &mut self,
        scenario: &Scenario,
        engine_override: Option<Engine>,
        exec_override: Option<ExecMode>,
    ) -> Result<SimReport, SimError> {
        self.interp(
            scenario,
            &SimOptions {
                engine: engine_override,
                exec: exec_override,
                ..SimOptions::default()
            },
        )
    }

    #[deprecated(note = "renamed to `Build::interp`")]
    pub fn interp_overrides(
        &mut self,
        scenario: &Scenario,
        overrides: &SimOptions,
    ) -> Result<SimReport, SimError> {
        self.interp(scenario, overrides)
    }

    /// Compile this session's checked program to interpreter bytecode at
    /// the default optimization level and render the listing
    /// (`lucidc sim --dump-bytecode`).
    pub fn disassemble(&mut self) -> Result<String, Diagnostics> {
        self.disassemble_opt(OptLevel::default())
    }

    /// [`Build::disassemble`] at an explicit optimization level
    /// (`lucidc sim --opt=N --dump-bytecode`).
    pub fn disassemble_opt(&mut self, level: OptLevel) -> Result<String, Diagnostics> {
        self.checked()
            .map(|p| lucid_interp::disassemble_opt(p, level))
    }

    /// Lint stage: warning-severity `W05xx` diagnostics over the checked
    /// program (`lucidc check --lint`). Cached alongside the check
    /// artifact; `Err` means the program failed an earlier stage.
    pub fn lint(&mut self) -> Result<&Diagnostics, Diagnostics> {
        self.ensure_lint();
        as_result(self.lint.as_ref())
    }

    /// Compile this session's checked program to bytecode at `level` and
    /// run the bytecode verifier over every handler after every pass
    /// (`lucidc sim --verify-bytecode`). `Ok` carries the violation list
    /// (empty on a clean pipeline); `Err` means the program failed an
    /// earlier stage.
    pub fn verify_bytecode(&mut self, level: OptLevel) -> Result<Vec<Violation>, Diagnostics> {
        self.ensure_checked();
        let prog = match self.checked.as_ref().expect("ensured") {
            Ok(p) => p,
            Err(ds) => return Err(ds.clone()),
        };
        self.stats.verify_runs += 1;
        Ok(
            match lucid_interp::CompiledProg::compile_verified(prog, level) {
                Ok(_) => Vec::new(),
                Err(violations) => violations,
            },
        )
    }

    /// Swap in a different configuration, keeping every cache the new
    /// configuration cannot invalidate. The parse artifact always
    /// survives; the check artifact survives unless the check options
    /// changed; elaboration, layout, and P4 are recomputed on next access
    /// — this is how one session compiles the same (already-checked)
    /// program for several targets.
    pub fn reconfigure(&mut self, cfg: &Compiler) {
        if self.cfg.check != cfg.check {
            self.checked = None;
            self.checked_arc = None;
            self.lint = None;
            self.warnings = Diagnostics::new();
        }
        self.cfg = cfg.clone();
        self.handlers = None;
        self.layout = None;
        self.p4 = None;
    }

    /// Everything known about this session right now: warnings from
    /// successful stages plus the error set of the first failed stage (if
    /// any). Does not force any stage to run.
    pub fn diagnostics(&self) -> Diagnostics {
        // The checked-stage error set already contains the warnings that
        // analysis produced alongside the errors, so it stands alone.
        if let Some(Err(ds)) = &self.ast {
            return ds.clone();
        }
        if let Some(Err(ds)) = &self.checked {
            return ds.clone();
        }
        let mut out = self.warnings.clone();
        // A backend failure propagates through later stage caches as clones
        // of the same set, so only the first failed stage contributes.
        let backend_err = self
            .handlers
            .as_ref()
            .and_then(|r| r.as_ref().err())
            .or_else(|| self.layout.as_ref().and_then(|r| r.as_ref().err()))
            .or_else(|| self.p4.as_ref().and_then(|r| r.as_ref().err()));
        if let Some(ds) = backend_err {
            out.extend(ds.clone());
        }
        out
    }

    /// Render all current diagnostics rustc-style against the session's
    /// source map.
    pub fn render_diagnostics(&self) -> String {
        self.diagnostics().render(&self.sm)
    }

    /// Serialize all current diagnostics as a JSON array (for `lucidc
    /// --json-diagnostics`, editors, CI).
    pub fn diagnostics_json(&self) -> String {
        self.diagnostics().to_json(&self.sm)
    }

    /// Drive the whole pipeline and bundle owned artifacts (the shape the
    /// pre-session API returned). Prefer the borrowing accessors unless the
    /// artifacts must outlive the session.
    pub fn artifacts(&mut self) -> Result<Artifacts, Diagnostics> {
        self.ensure_p4();
        let checked = as_result(self.checked.as_ref())?.clone();
        let handlers = as_result(self.handlers.as_ref())?.clone();
        let layout = as_result(self.layout.as_ref())?.clone();
        let p4 = as_result(self.p4.as_ref())?.clone();
        Ok(Artifacts {
            checked,
            compiled: Compiled {
                handlers,
                layout,
                p4,
            },
        })
    }

    // ------------------------------------------------------ stage drivers

    fn ensure_ast(&mut self) {
        if self.ast.is_some() {
            return;
        }
        self.stats.parse_runs += 1;
        self.ast = Some(lucid_frontend::parse_program(&self.sm.src).map_err(|d| {
            let mut ds = Diagnostics::new();
            ds.push(d);
            ds
        }));
    }

    fn ensure_checked(&mut self) {
        if self.checked.is_some() {
            return;
        }
        self.ensure_ast();
        let result = match self.ast.as_ref().expect("ensured") {
            Err(ds) => Err(ds.clone()),
            Ok(program) => {
                self.stats.check_runs += 1;
                let analysis = lucid_check::analyze(program.clone(), &self.cfg.check);
                match analysis.program {
                    Some(p) => {
                        self.warnings.extend(analysis.diagnostics);
                        Ok(p)
                    }
                    None => Err(analysis.diagnostics),
                }
            }
        };
        self.checked = Some(result);
    }

    fn ensure_lint(&mut self) {
        if self.lint.is_some() {
            return;
        }
        self.ensure_checked();
        let result = match self.checked.as_ref().expect("ensured") {
            Err(ds) => Err(ds.clone()),
            Ok(prog) => {
                self.stats.lint_runs += 1;
                Ok(lucid_check::lint(prog))
            }
        };
        self.lint = Some(result);
    }

    fn ensure_handlers(&mut self) {
        if self.handlers.is_some() {
            return;
        }
        self.ensure_checked();
        let result = match self.checked.as_ref().expect("ensured") {
            Err(ds) => Err(ds.clone()),
            Ok(prog) => {
                self.stats.elaborate_runs += 1;
                lucid_backend::elaborate(prog).map(|mut handlers| {
                    if self.cfg.backend.optimize {
                        lucid_backend::optimize(&mut handlers);
                    }
                    handlers
                })
            }
        };
        self.handlers = Some(result);
    }

    fn ensure_layout(&mut self) {
        if self.layout.is_some() {
            return;
        }
        self.ensure_handlers();
        let result = match (self.checked.as_ref(), self.handlers.as_ref()) {
            (Some(Ok(prog)), Some(Ok(handlers))) => {
                self.stats.layout_runs += 1;
                lucid_backend::place(
                    prog,
                    handlers,
                    &self.cfg.backend.target,
                    self.cfg.backend.layout,
                )
            }
            (_, Some(Err(ds))) => Err(ds.clone()),
            _ => Err(self
                .checked
                .as_ref()
                .and_then(|r| r.as_ref().err().cloned())
                .unwrap_or_default()),
        };
        self.layout = Some(result);
    }

    fn ensure_p4(&mut self) {
        if self.p4.is_some() {
            return;
        }
        self.ensure_layout();
        let result = match (
            self.checked.as_ref(),
            self.handlers.as_ref(),
            self.layout.as_ref(),
        ) {
            (Some(Ok(prog)), Some(Ok(handlers)), Some(Ok(layout))) => {
                self.stats.p4_runs += 1;
                Ok(lucid_backend::generate(prog, handlers, layout))
            }
            (_, _, Some(Err(ds))) => Err(ds.clone()),
            _ => Err(self
                .layout
                .as_ref()
                .and_then(|r| r.as_ref().err().cloned())
                .unwrap_or_default()),
        };
        self.p4 = Some(result);
    }
}

fn as_result<T>(slot: Option<&Result<T, Diagnostics>>) -> Result<&T, Diagnostics> {
    match slot.expect("stage driver ran") {
        Ok(v) => Ok(v),
        Err(ds) => Err(ds.clone()),
    }
}

/// Why [`Build::interp`] failed outright (mismatched expectations are not
/// errors — they come back inside the [`SimReport`]).
#[derive(Debug, Clone)]
pub enum SimError {
    /// The program itself does not parse or check.
    Diagnostics(Diagnostics),
    /// The scenario does not fit the schema or the program.
    Scenario(ScenarioError),
    /// The simulation hit a runtime fault (out-of-bounds index, fuel).
    Runtime(InterpError),
    /// A world snapshot could not be taken or a restore was refused.
    Snapshot(String),
    /// A hot-swap was rejected; the session keeps its current program.
    Swap(String),
}

impl From<SimRunError> for SimError {
    fn from(e: SimRunError) -> Self {
        match e {
            SimRunError::Scenario(s) => SimError::Scenario(s),
            SimRunError::Runtime(r) => SimError::Runtime(r),
            SimRunError::Snapshot(m) => SimError::Snapshot(m),
            SimRunError::Swap(m) => SimError::Swap(m),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Diagnostics(ds) => {
                write!(f, "the program has {} diagnostics", ds.error_count())
            }
            SimError::Scenario(e) => write!(f, "{e}"),
            SimError::Runtime(e) => write!(f, "runtime fault: {e}"),
            SimError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            SimError::Swap(msg) => write!(f, "swap rejected: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Everything produced by a successful compile.
#[derive(Debug, Clone)]
pub struct Artifacts {
    pub checked: CheckedProgram,
    pub compiled: Compiled,
}

/// A [`ProgramHost`] backed by [`Build`] sessions: the host `lucidc
/// serve` runs with. Each serve session owns one compilation session,
/// so diagnostics render against the session's own source and the parse
/// artifact survives across epochs — a hot-swap back to the same source
/// goes through [`Build::reconfigure`] and reuses the cached check
/// instead of re-parsing.
#[derive(Default)]
pub struct BuildHost {
    compiler: Compiler,
    builds: BTreeMap<u64, Build>,
}

impl BuildHost {
    /// A host compiling every session under `compiler`'s configuration.
    pub fn new(compiler: Compiler) -> BuildHost {
        BuildHost {
            compiler,
            builds: BTreeMap::new(),
        }
    }

    /// The compilation session behind a serve session, if open.
    pub fn build(&self, session: u64) -> Option<&Build> {
        self.builds.get(&session)
    }
}

impl ProgramHost for BuildHost {
    fn open_program(&mut self, session: u64, source: &str) -> Result<Arc<CheckedProgram>, String> {
        let mut build = self
            .compiler
            .build(&format!("session-{session}.lucid"), source);
        let prog = build
            .checked_arc()
            .map_err(|_| build.render_diagnostics())?;
        self.builds.insert(session, build);
        Ok(prog)
    }

    fn swap_program(&mut self, session: u64, source: &str) -> Result<Arc<CheckedProgram>, String> {
        if let Some(build) = self.builds.get_mut(&session) {
            if build.source_map().src == source {
                // A new epoch of the same source: re-elaborate through
                // `reconfigure` without re-parsing or re-checking.
                let cfg = build.config().clone();
                build.reconfigure(&cfg);
                return build.checked_arc().map_err(|_| build.render_diagnostics());
            }
        }
        let mut build = self
            .compiler
            .build(&format!("session-{session}.swap.lucid"), source);
        let prog = build
            .checked_arc()
            .map_err(|_| build.render_diagnostics())?;
        self.builds.insert(session, build);
        Ok(prog)
    }

    fn drop_session(&mut self, session: u64) {
        self.builds.remove(&session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        global a = new Array<<32>>(8);
        event go(int i);
        handle go(int i) { Array.set(a, i, 1); }
    "#;

    #[test]
    fn build_end_to_end() {
        let mut b = Compiler::new().build("t.lucid", COUNTER);
        assert!(b.layout().unwrap().total_stages >= 2);
        assert!(b.p4().unwrap().loc.total() > 40);
    }

    #[test]
    fn empty_handler_builds_and_simulates_end_to_end() {
        // An empty handler body must survive the whole pipeline — empty
        // IR, dispatcher-only layout, P4 text — and run under both
        // executors (the event is consumed, not exported).
        let mut b = Compiler::new().build("sink.lucid", "event noop(); handle noop() { }");
        assert!(b.handlers().unwrap()[0].tables.is_empty());
        assert_eq!(b.layout().unwrap().body_stages, 0);
        assert!(b.p4().is_ok());
        let sc = Scenario::from_json(
            r#"{"events": [{"time_ns": 0, "switch": 1, "event": "noop", "args": []}],
                "expect": {"handled": 1, "exported": 0}}"#,
        )
        .unwrap();
        for exec in [ExecMode::Ast, ExecMode::Bytecode] {
            let report = b.interp(&sc, &SimOptions::new().exec(exec)).unwrap();
            assert!(report.passed(), "{exec:?}: {:?}", report.mismatches);
        }
    }

    #[test]
    fn stage_artifacts_are_cached() {
        let mut b = Compiler::new().build("t.lucid", COUNTER);
        b.p4().unwrap();
        b.p4().unwrap();
        b.layout().unwrap();
        b.checked().unwrap();
        let s = *b.stats();
        assert_eq!(
            (
                s.parse_runs,
                s.check_runs,
                s.elaborate_runs,
                s.layout_runs,
                s.p4_runs
            ),
            (1, 1, 1, 1, 1),
            "{s:?}"
        );
    }

    #[test]
    fn reconfigure_keeps_front_end() {
        let mut b = Compiler::new().build("t.lucid", COUNTER);
        let stages_default = b.layout().unwrap().total_stages;
        let tall = PipelineSpec {
            stages: 256,
            ..PipelineSpec::tofino()
        };
        b.reconfigure(&Compiler::new().target(tall).layout(LayoutOptions {
            dispatcher_stages: 3,
            ..LayoutOptions::default()
        }));
        let stages_tall = b.layout().unwrap().total_stages;
        assert_eq!(stages_tall, stages_default + 2, "dispatcher grew by 2");
        let s = *b.stats();
        assert_eq!(
            (s.parse_runs, s.check_runs),
            (1, 1),
            "front end not re-run: {s:?}"
        );
        assert_eq!(s.layout_runs, 2);
    }

    #[test]
    fn errors_render_with_source_excerpt() {
        let mut b = Compiler::new().build(
            "bad.lucid",
            "global a = new Array<<32>>(8);\nglobal b = new Array<<32>>(8);\n\
             event go(int i);\nhandle go(int i) {\n  int x = Array.get(b, i);\n  \
             Array.set(a, i, x);\n}\n",
        );
        assert!(b.p4().is_err());
        let msg = b.render_diagnostics();
        assert!(msg.contains("out of declaration order"), "{msg}");
        assert!(msg.contains("bad.lucid:6"), "{msg}");
        assert!(msg.contains("Array.set(a, i, x);"), "{msg}");
        assert!(msg.contains("[E0401]"), "{msg}");
    }

    #[test]
    fn memop_error_renders_at_the_operator() {
        let mut b = Compiler::new().build("m.lucid", "memop bad(int m, int x) { return m * x; }\n");
        assert!(b.checked().is_err());
        assert!(
            b.render_diagnostics().contains('*'),
            "{}",
            b.render_diagnostics()
        );
    }

    #[test]
    fn interp_stage_runs_scenarios_on_the_cached_check() {
        let mut b = Compiler::new().build("t.lucid", COUNTER);
        let sc = Scenario::from_json(
            r#"{"name": "poke-and-count",
                "events": [{"time_ns": 0, "switch": 1, "event": "go", "args": [2]}],
                "expect": {"handled": 1,
                           "arrays": [{"switch": 1, "array": "a", "index": 2, "value": 1}]}}"#,
        )
        .unwrap();
        let report = b.interp(&sc, &SimOptions::default()).unwrap();
        assert!(report.passed(), "{:?}", report.mismatches);
        let report2 = b.interp(&sc, &SimOptions::default()).unwrap();
        assert!(report2.passed());
        let s = *b.stats();
        assert_eq!(
            (s.parse_runs, s.check_runs, s.interp_runs),
            (1, 1, 2),
            "check artifact is reused across sim runs: {s:?}"
        );
        assert_eq!(s.p4_runs, 0, "simulation never touches the backend");

        // A scenario that does not fit the program is a structured error.
        let bad =
            Scenario::from_json(r#"{"events": [{"time_ns": 0, "switch": 1, "event": "nope"}]}"#)
                .unwrap();
        assert!(matches!(
            b.interp(&bad, &SimOptions::default()),
            Err(SimError::Scenario(_))
        ));

        // A broken program surfaces its diagnostics.
        let mut broken =
            Compiler::new().build("m.lucid", "memop bad(int m, int x) { return m * x; }");
        assert!(matches!(
            broken.interp(&sc, &SimOptions::default()),
            Err(SimError::Diagnostics(_))
        ));
    }

    #[test]
    fn build_host_serves_and_swaps_without_reparse() {
        let scenario = r#"{"name": "served",
            "events": [{"time_ns": 0, "switch": 1, "event": "go", "args": [3]}],
            "limits": {"max_time_ns": 100000}}"#;
        let mut state = ServeState::new();
        let mut host = BuildHost::new(Compiler::new());
        let open = format!(
            "{{\"op\":\"open\",\"program\":{:?},\"scenario\":{:?}}}",
            COUNTER, scenario
        );
        let r = handle_line(&mut state, &mut host, &open);
        assert!(r.reply().contains("\"ok\":true"), "{}", r.reply());
        // Swapping back the same source is an epoch change, not a rebuild:
        // the cached parse + check survive `reconfigure`.
        let swap = format!(
            "{{\"op\":\"swap\",\"session\":1,\"program\":{:?}}}",
            COUNTER
        );
        let r = handle_line(&mut state, &mut host, &swap);
        assert!(r.reply().contains("\"arrays_carried\":1"), "{}", r.reply());
        let stats = *host.build(1).unwrap().stats();
        assert_eq!(
            (stats.parse_runs, stats.check_runs),
            (1, 1),
            "swap re-used the front end: {stats:?}"
        );
        // A swap that fails typecheck is a structured `swap` error and
        // leaves the session running.
        let bad = "{\"op\":\"swap\",\"session\":1,\"program\":\"memop bad(int m, int x) { return m * x; }\"}";
        let r = handle_line(&mut state, &mut host, bad);
        assert!(r.reply().contains("\"kind\":\"swap\""), "{}", r.reply());
        let r = handle_line(&mut state, &mut host, "{\"op\":\"drain\",\"session\":1}");
        assert!(r.reply().contains("\"report\":{"), "{}", r.reply());
        assert!(state.is_empty());
    }
}
