//! # lucid-core
//!
//! The umbrella crate for this Rust reproduction of *Lucid: A Language for
//! Control in the Data Plane* (SIGCOMM 2021). It re-exports the pipeline
//! stages and provides one-call drivers:
//!
//! * [`compile_source`] — parse → check (memops §4.2, ordered effects §5)
//!   → elaborate → place → generate P4 (§6);
//! * [`check_source`] — front half only, for interpreter users;
//! * [`Interp`] re-export — the event-driven network simulator (§3).
//!
//! ```
//! let art = lucid_core::compile_source("counter.lucid", r#"
//!     global cts = new Array<<32>>(64);
//!     memop plus(int m, int x) { return m + x; }
//!     event pkt(int idx);
//!     handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
//! "#).unwrap();
//! assert!(art.compiled.layout.total_stages <= 12);
//! assert!(art.compiled.p4.source.contains("RegisterAction"));
//! ```

pub use lucid_backend as backend;
pub use lucid_check as check;
pub use lucid_frontend as frontend;
pub use lucid_interp as interp;
pub use lucid_tofino as tofino;

pub use lucid_backend::{Compiled, Layout, P4Program};
pub use lucid_check::CheckedProgram;
pub use lucid_interp::{Interp, NetConfig};
pub use lucid_tofino::PipelineSpec;

use lucid_frontend::SourceMap;

/// A fully rendered compile error: diagnostics already formatted against
/// the source text.
#[derive(Debug, Clone)]
pub struct CompileError {
    pub rendered: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.rendered)
    }
}

impl std::error::Error for CompileError {}

/// Everything produced by a successful compile.
#[derive(Debug, Clone)]
pub struct Artifacts {
    pub checked: CheckedProgram,
    pub compiled: Compiled,
}

/// Parse and semantically check a source file.
pub fn check_source(name: &str, src: &str) -> Result<CheckedProgram, CompileError> {
    let sm = SourceMap::new(name, src);
    let program = lucid_frontend::parse_program(src).map_err(|d| CompileError {
        rendered: d.render(&sm),
    })?;
    lucid_check::check(program).map_err(|ds| CompileError { rendered: ds.render(&sm) })
}

/// Full pipeline: source text → checked program → Tofino layout → P4.
pub fn compile_source(name: &str, src: &str) -> Result<Artifacts, CompileError> {
    let sm = SourceMap::new(name, src);
    let checked = check_source(name, src)?;
    let compiled = lucid_backend::compile(&checked)
        .map_err(|ds| CompileError { rendered: ds.render(&sm) })?;
    Ok(Artifacts { checked, compiled })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_source_end_to_end() {
        let art = compile_source(
            "t.lucid",
            r#"
            global a = new Array<<32>>(8);
            event go(int i);
            handle go(int i) { Array.set(a, i, 1); }
            "#,
        )
        .unwrap();
        assert!(art.compiled.layout.total_stages >= 2);
        assert!(art.compiled.p4.loc.total() > 40);
    }

    #[test]
    fn errors_render_with_source_excerpt() {
        let err = compile_source(
            "bad.lucid",
            "global a = new Array<<32>>(8);\nglobal b = new Array<<32>>(8);\n\
             event go(int i);\nhandle go(int i) {\n  int x = Array.get(b, i);\n  \
             Array.set(a, i, x);\n}\n",
        )
        .unwrap_err();
        assert!(err.rendered.contains("out of declaration order"), "{err}");
        assert!(err.rendered.contains("bad.lucid:6"), "{err}");
        assert!(err.rendered.contains("Array.set(a, i, x);"), "{err}");
    }

    #[test]
    fn memop_error_renders_at_the_operator() {
        let err = compile_source(
            "m.lucid",
            "memop bad(int m, int x) { return m * x; }\n",
        )
        .unwrap_err();
        assert!(err.rendered.contains('*'), "{err}");
    }
}
