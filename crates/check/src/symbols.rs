//! Symbol tables and compile-time constant evaluation.
//!
//! [`ProgramInfo`] is the first artifact of semantic analysis: it collects
//! every top-level declaration into lookup tables, resolves `const`
//! expressions to values, and assigns each `global` array its **stage
//! index** — the declaration-order position that the ordered type-and-effect
//! system (§5 of the paper) treats as the specification of pipeline layout.

use lucid_frontend::ast::*;
use lucid_frontend::diag::{Diagnostic, Diagnostics};
use lucid_frontend::span::Span;
use std::collections::HashMap;

/// Identifier of a global array: its declaration-order index. The type
/// system's "stage" for the array is exactly this number (Appendix A assigns
/// `g_i` the type `ref(T_i, i)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub usize);

/// A resolved global array declaration.
#[derive(Debug, Clone)]
pub struct GlobalInfo {
    pub id: GlobalId,
    pub name: String,
    /// Bit width of each cell.
    pub cell_width: u32,
    /// Number of cells, resolved from the (constant) size expression.
    pub len: u64,
    pub span: Span,
}

/// A resolved event declaration.
#[derive(Debug, Clone)]
pub struct EventInfo {
    /// Index of the event in declaration order; doubles as its wire
    /// identifier in generated packet headers.
    pub id: usize,
    pub name: String,
    pub params: Vec<Param>,
    pub span: Span,
}

/// A resolved compile-time constant.
#[derive(Debug, Clone)]
pub struct ConstInfo {
    pub name: String,
    pub ty: Ty,
    pub value: u64,
    pub span: Span,
}

/// A resolved multicast group.
#[derive(Debug, Clone)]
pub struct GroupInfo {
    pub name: String,
    /// Switch locations, resolved to constants.
    pub members: Vec<u64>,
    pub span: Span,
}

/// Symbol tables for a parsed program. Function, handler, and memop bodies
/// stay in the AST; this structure only records their signatures.
#[derive(Debug, Clone, Default)]
pub struct ProgramInfo {
    pub consts: HashMap<String, ConstInfo>,
    pub groups: HashMap<String, GroupInfo>,
    pub globals: Vec<GlobalInfo>,
    pub globals_by_name: HashMap<String, GlobalId>,
    pub events: Vec<EventInfo>,
    pub events_by_name: HashMap<String, usize>,
    /// Function name → (return type, params).
    pub funs: HashMap<String, (Ty, Vec<Param>)>,
    /// Memop name → params (always two ints once validated).
    pub memops: HashMap<String, Vec<Param>>,
    /// Handler name → params.
    pub handlers: HashMap<String, Vec<Param>>,
}

impl ProgramInfo {
    /// Build symbol tables from a parsed program, resolving constants.
    /// Returns the first error; [`ProgramInfo::build_all`] accumulates.
    pub fn build(program: &Program) -> Result<ProgramInfo, Diagnostic> {
        let (info, mut diags) = Self::build_all(program);
        match diags.items.is_empty() {
            true => Ok(info),
            false => Err(diags.items.remove(0)),
        }
    }

    /// Build symbol tables from a parsed program, resolving constants and
    /// accumulating one diagnostic per bad declaration instead of stopping
    /// at the first (a bad declaration is skipped; the rest still resolve).
    ///
    /// Duplicate names across any namespace are rejected: Lucid identifiers
    /// share one namespace so that error messages never depend on which
    /// table a name resolved from.
    pub fn build_all(program: &Program) -> (ProgramInfo, Diagnostics) {
        let mut info = ProgramInfo::default();
        let mut diags = Diagnostics::new();
        let mut taken: HashMap<String, Span> = HashMap::new();
        let claim = |name: &Ident, taken: &mut HashMap<String, Span>| {
            if let Some(prev) = taken.get(&name.name) {
                return Err(Diagnostic::error(
                    format!("duplicate declaration of `{}`", name.name),
                    name.span,
                )
                .with_note("previously declared here", *prev));
            }
            taken.insert(name.name.clone(), name.span);
            Ok(())
        };

        for decl in &program.decls {
            // One bad declaration must not hide problems in the next, so
            // each arm reports into `diags` and continues the scan.
            let result: Result<(), Diagnostic> = (|| {
                match &decl.kind {
                    DeclKind::Const { ty, name, value } => {
                        claim(name, &mut taken)?;
                        let v = info.eval_const(value)?;
                        let v = match ty {
                            Ty::Int(w) => mask(v, *w),
                            Ty::Bool => {
                                if v > 1 {
                                    return Err(Diagnostic::error(
                                        format!(
                                            "boolean constant `{}` must be 0/1/true/false",
                                            name
                                        ),
                                        value.span,
                                    ));
                                }
                                v
                            }
                            other => {
                                return Err(Diagnostic::error(
                                    format!("`const` of type {other} is not supported"),
                                    decl.span,
                                ))
                            }
                        };
                        info.consts.insert(
                            name.name.clone(),
                            ConstInfo {
                                name: name.name.clone(),
                                ty: *ty,
                                value: v,
                                span: name.span,
                            },
                        );
                    }
                    DeclKind::Group { name, members } => {
                        claim(name, &mut taken)?;
                        let mut vals = Vec::with_capacity(members.len());
                        for m in members {
                            vals.push(info.eval_const(m)?);
                        }
                        info.groups.insert(
                            name.name.clone(),
                            GroupInfo {
                                name: name.name.clone(),
                                members: vals,
                                span: name.span,
                            },
                        );
                    }
                    DeclKind::GlobalArray {
                        name,
                        cell_width,
                        size,
                    } => {
                        claim(name, &mut taken)?;
                        let len = info.eval_const(size)?;
                        if len == 0 {
                            return Err(Diagnostic::error(
                                format!("global array `{name}` has zero length"),
                                size.span,
                            ));
                        }
                        let id = GlobalId(info.globals.len());
                        info.globals.push(GlobalInfo {
                            id,
                            name: name.name.clone(),
                            cell_width: *cell_width,
                            len,
                            span: name.span,
                        });
                        info.globals_by_name.insert(name.name.clone(), id);
                    }
                    DeclKind::Event { name, params } => {
                        claim(name, &mut taken)?;
                        let id = info.events.len();
                        info.events.push(EventInfo {
                            id,
                            name: name.name.clone(),
                            params: params.clone(),
                            span: name.span,
                        });
                        info.events_by_name.insert(name.name.clone(), id);
                    }
                    DeclKind::Handler { name, params, .. } => {
                        // Handlers share their event's name; do not claim it.
                        if info.handlers.contains_key(&name.name) {
                            return Err(Diagnostic::error(
                                format!("duplicate handler `{name}`"),
                                name.span,
                            ));
                        }
                        info.handlers.insert(name.name.clone(), params.clone());
                    }
                    DeclKind::Fun {
                        ret_ty,
                        name,
                        params,
                        ..
                    } => {
                        claim(name, &mut taken)?;
                        info.funs
                            .insert(name.name.clone(), (*ret_ty, params.clone()));
                    }
                    DeclKind::Memop { name, params, .. } => {
                        claim(name, &mut taken)?;
                        info.memops.insert(name.name.clone(), params.clone());
                    }
                }
                Ok(())
            })();
            if let Err(d) = result {
                diags.push(d.or_code("E0200"));
            }
        }
        (info, diags)
    }

    /// Evaluate a compile-time constant expression. Only integers, booleans,
    /// previously-declared constants, and pure operators are allowed.
    pub fn eval_const(&self, e: &Expr) -> Result<u64, Diagnostic> {
        match &e.kind {
            ExprKind::Int { value, .. } => Ok(*value),
            ExprKind::Bool(b) => Ok(*b as u64),
            ExprKind::Var(id) => match self.consts.get(&id.name) {
                Some(c) => Ok(c.value),
                None => Err(Diagnostic::error(
                    format!(
                        "`{}` is not a compile-time constant (only `const` names may appear here)",
                        id.name
                    ),
                    id.span,
                )),
            },
            ExprKind::Unary { op, arg } => {
                let v = self.eval_const(arg)?;
                Ok(match op {
                    UnOp::Not => (v == 0) as u64,
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::BitNot => !v,
                })
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let a = self.eval_const(lhs)?;
                let b = self.eval_const(rhs)?;
                let r = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(Diagnostic::error("division by zero in constant", e.span));
                        }
                        a / b
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            return Err(Diagnostic::error("modulo by zero in constant", e.span));
                        }
                        a % b
                    }
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    // Match the interpreter: a shift count at or past the
                    // operand width (64 here — const arithmetic is
                    // width-free) clears the value instead of wrapping the
                    // count mod 64.
                    BinOp::Shl => {
                        if b >= 64 {
                            0
                        } else {
                            a.wrapping_shl(b as u32)
                        }
                    }
                    BinOp::Shr => {
                        if b >= 64 {
                            0
                        } else {
                            a.wrapping_shr(b as u32)
                        }
                    }
                    BinOp::Eq => (a == b) as u64,
                    BinOp::Neq => (a != b) as u64,
                    BinOp::Lt => (a < b) as u64,
                    BinOp::Gt => (a > b) as u64,
                    BinOp::Le => (a <= b) as u64,
                    BinOp::Ge => (a >= b) as u64,
                    BinOp::And => ((a != 0) && (b != 0)) as u64,
                    BinOp::Or => ((a != 0) || (b != 0)) as u64,
                };
                Ok(r)
            }
            ExprKind::Cast { width, arg } => Ok(mask(self.eval_const(arg)?, *width)),
            _ => Err(Diagnostic::error(
                "this expression is not a compile-time constant",
                e.span,
            )),
        }
    }

    /// Look up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalInfo> {
        self.globals_by_name.get(name).map(|id| &self.globals[id.0])
    }

    /// Look up an event by name.
    pub fn event(&self, name: &str) -> Option<&EventInfo> {
        self.events_by_name.get(name).map(|id| &self.events[*id])
    }
}

/// Truncate `v` to `width` bits.
pub fn mask(v: u64, width: u32) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_frontend::parse_program;

    fn build(src: &str) -> ProgramInfo {
        ProgramInfo::build(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn const_folding_through_references() {
        let info = build("const int A = 4; const int B = A * 2 + 1;");
        assert_eq!(info.consts["B"].value, 9);
    }

    #[test]
    fn global_sizes_resolve_to_constants() {
        let info = build("const int N = 16; global t = new Array<<32>>(N * 4);");
        assert_eq!(info.global("t").unwrap().len, 64);
        assert_eq!(info.global("t").unwrap().id, GlobalId(0));
    }

    #[test]
    fn stage_indices_follow_declaration_order() {
        let info = build(
            "global a = new Array<<32>>(1); global b = new Array<<16>>(2); \
             global c = new Array<<8>>(3);",
        );
        assert_eq!(info.global("a").unwrap().id, GlobalId(0));
        assert_eq!(info.global("b").unwrap().id, GlobalId(1));
        assert_eq!(info.global("c").unwrap().id, GlobalId(2));
        assert_eq!(info.global("c").unwrap().cell_width, 8);
    }

    #[test]
    fn duplicate_names_rejected_across_namespaces() {
        let err = ProgramInfo::build(
            &parse_program("const int x = 1; global x = new Array<<32>>(4);").unwrap(),
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn handler_may_share_event_name() {
        let info = build("event ping(int x); handle ping(int x) { generate ping(x); }");
        assert!(info.event("ping").is_some());
        assert!(info.handlers.contains_key("ping"));
    }

    #[test]
    fn zero_length_array_rejected() {
        let err = ProgramInfo::build(&parse_program("global a = new Array<<32>>(0);").unwrap())
            .unwrap_err();
        assert!(err.message.contains("zero length"));
    }

    #[test]
    fn non_constant_size_rejected() {
        let src = "event e(int n); global a = new Array<<32>>(n);";
        let err = ProgramInfo::build(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.message.contains("not a compile-time constant"));
    }

    #[test]
    fn const_mask_applies_width() {
        let info = build("const int<<8>> A = 300;");
        assert_eq!(info.consts["A"].value, 300 & 0xff);
    }

    #[test]
    fn groups_resolve_members() {
        let info = build("const int S2 = 2; const group G = {S2, 3, 4};");
        assert_eq!(info.groups["G"].members, vec![2, 3, 4]);
    }
}
