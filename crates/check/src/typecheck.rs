//! Type checking and the ordered type-and-effect system (§5, Appendix A).
//!
//! This module walks every handler (and, transitively, every function it
//! calls) doing two jobs at once, exactly as the paper's combined
//! type-and-effect judgement `Γ, ε₁ ⊢ e : τ, ε₂` does:
//!
//! * **Types**: bit-width-aware integer typing, booleans, event values,
//!   groups, and the builtin `Array`/`Event`/`Sys` modules.
//! * **Effects**: the *current stage* — the index of the earliest global
//!   array the computation may still access. Accessing global `gᵢ` requires
//!   `stage ≤ i` and leaves the computation at stage `i + 1`. Declaration
//!   order of `global` arrays is the specification (§5.1); any handler that
//!   violates it gets a source-level error naming both accesses.
//!
//! Functions are checked **per instantiation**: a call site binds the
//! function's `Array<<w>>` parameters to concrete globals and re-checks the
//! body at the caller's current stage. This gives the effect polymorphism
//! the appendix describes ("a single function definition can be re-used ...
//! at different starting stages") without a constraint solver, because every
//! Lucid call graph is finite and non-recursive (recursion in the data plane
//! happens through `generate`, i.e. a fresh pipeline pass, not a call).

use crate::memop::{validate_memops, MemopIr};
use crate::symbols::{GlobalId, ProgramInfo};
use lucid_frontend::ast::*;
use lucid_frontend::diag::{Diagnostic, Diagnostics};
use lucid_frontend::span::Span;
use std::collections::HashMap;

/// A fully checked program: the AST plus every table later phases need.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    pub program: Program,
    pub info: ProgramInfo,
    /// Validated memops by name.
    pub memops: HashMap<String, MemopIr>,
}

impl CheckedProgram {
    /// Handler body lookup.
    pub fn handler_body(&self, name: &str) -> Option<(&Vec<Param>, &Block)> {
        self.program.decls.iter().find_map(|d| match &d.kind {
            DeclKind::Handler {
                name: n,
                params,
                body,
            } if n.name == name => Some((params, body)),
            _ => None,
        })
    }

    /// Function body lookup.
    pub fn fun_body(&self, name: &str) -> Option<(&Ty, &Vec<Param>, &Block)> {
        self.program.decls.iter().find_map(|d| match &d.kind {
            DeclKind::Fun {
                ret_ty,
                name: n,
                params,
                body,
            } if n.name == name => Some((ret_ty, params, body)),
            _ => None,
        })
    }
}

/// Options threaded through semantic analysis (configured per-session by
/// `lucid_core::Compiler`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOptions {
    /// Emit warnings for uncalled functions and unreachable statements.
    pub warn_dead_code: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            warn_dead_code: true,
        }
    }
}

/// Outcome of [`analyze`]: the checked program (when error-free) plus every
/// diagnostic — errors *and* warnings — accumulated across all phases.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// `Some` exactly when no error-level diagnostic was produced.
    pub program: Option<CheckedProgram>,
    pub diagnostics: Diagnostics,
}

/// Parse-tree in, checked program out. Runs, in order: symbol construction,
/// memop validation, then the combined type-and-effect pass over every
/// handler. Collects as many diagnostics as it can.
pub fn check(program: Program) -> Result<CheckedProgram, Diagnostics> {
    let analysis = analyze(program, &CheckOptions::default());
    match analysis.program {
        Some(p) => Ok(p),
        None => Err(analysis.diagnostics),
    }
}

/// Full semantic analysis, accumulating diagnostics across declarations and
/// phases instead of stopping at the first error: every bad memop, every
/// handler's violations, and all type errors are reported in one pass.
/// (Symbol-table errors still gate the later phases — a broken symbol table
/// would only produce cascades.)
pub fn analyze(program: Program, opts: &CheckOptions) -> Analysis {
    let (info, mut diags) = ProgramInfo::build_all(&program);
    if diags.has_errors() {
        return Analysis {
            program: None,
            diagnostics: diags,
        };
    }

    // Memop validation already reports every bad memop; the type-and-effect
    // pass still runs afterwards (membership checks resolve through the
    // declaration table, so missing IR for an invalid memop cannot cascade).
    let memops: HashMap<String, MemopIr> = match validate_memops(&program, &info) {
        Ok(irs) => irs.into_iter().map(|m| (m.name.clone(), m)).collect(),
        Err(ds) => {
            // (validate_memops already stamped the E0300 phase code.)
            diags.extend(ds);
            HashMap::new()
        }
    };

    let mut checker = Checker {
        program: &program,
        info: &info,
        memops: &memops,
        diags: Diagnostics::new(),
        call_stack: Vec::new(),
        opts: opts.clone(),
    };
    checker.check_all();
    diags.extend(checker.diags.or_code_all("E0400"));

    if diags.has_errors() {
        return Analysis {
            program: None,
            diagnostics: diags,
        };
    }
    Analysis {
        program: Some(CheckedProgram {
            program,
            info,
            memops,
        }),
        diagnostics: diags,
    }
}

/// What a name is bound to during checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CkTy {
    Val(Ty),
    /// An array reference, resolved to a concrete global.
    ArrayRef(GlobalId),
}

/// The effect state threaded through a handler: the current stage plus the
/// most recent access, kept for diagnostics.
#[derive(Debug, Clone)]
struct Stage {
    current: usize,
    last: Option<(String, Span)>,
}

impl Stage {
    fn start() -> Self {
        Stage {
            current: 0,
            last: None,
        }
    }

    /// Join of two control-flow branches: the pipeline must be laid out for
    /// whichever branch reaches further.
    fn join(a: Stage, b: Stage) -> Stage {
        if a.current >= b.current {
            a
        } else {
            b
        }
    }
}

struct Scopes {
    frames: Vec<HashMap<String, CkTy>>,
}

impl Scopes {
    fn new() -> Self {
        Scopes {
            frames: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn lookup(&self, name: &str) -> Option<CkTy> {
        self.frames.iter().rev().find_map(|f| f.get(name).copied())
    }

    fn insert(&mut self, name: &str, ty: CkTy) -> bool {
        // Reject redefinition anywhere in the chain: data-plane programs are
        // short, and silent shadowing of e.g. an event parameter has bitten
        // real P4 programs.
        if self.lookup(name).is_some() {
            return false;
        }
        self.frames
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), ty);
        true
    }
}

struct Checker<'a> {
    program: &'a Program,
    info: &'a ProgramInfo,
    memops: &'a HashMap<String, MemopIr>,
    diags: Diagnostics,
    call_stack: Vec<String>,
    opts: CheckOptions,
}

impl<'a> Checker<'a> {
    fn check_all(&mut self) {
        // Every handler must correspond to a declared event with an
        // identical signature: handlers *are* the computations bound to
        // events (§3.1).
        for decl in &self.program.decls {
            if let DeclKind::Handler { name, params, body } = &decl.kind {
                match self.info.event(&name.name) {
                    None => self.diags.push(
                        Diagnostic::error(
                            format!("handler `{name}` has no matching `event` declaration"),
                            name.span,
                        )
                        .with_help(format!("declare `event {name}(..);` before the handler")),
                    ),
                    Some(ev) => {
                        let ev_tys: Vec<Ty> = ev.params.iter().map(|p| p.ty).collect();
                        let h_tys: Vec<Ty> = params.iter().map(|p| p.ty).collect();
                        if ev_tys != h_tys {
                            self.diags.push(
                                Diagnostic::error(
                                    format!("handler `{name}` signature does not match its event"),
                                    name.span,
                                )
                                .with_note("event declared here", ev.span),
                            );
                        }
                    }
                }
                self.check_body(&name.name, params, body, None, Stage::start());
            }
        }
        // Standalone sanity check of function bodies that are never called
        // from a handler would require instantiation choices for their array
        // parameters, so uncalled functions are only syntax-checked (the
        // parser already did that). Warn so dead code is visible.
        if self.opts.warn_dead_code {
            for decl in &self.program.decls {
                if let DeclKind::Fun { name, .. } = &decl.kind {
                    if !program_calls(self.program, &name.name) {
                        self.diags.push(
                            Diagnostic::warning(
                                format!("function `{name}` is never called"),
                                name.span,
                            )
                            .with_code("W0001"),
                        );
                    }
                }
            }
        }
    }

    /// Check a handler or (instantiated) function body. Returns the stage at
    /// exit. `ret_ty = None` means "handler" (only bare `return;` allowed).
    fn check_body(
        &mut self,
        owner: &str,
        params: &[Param],
        body: &Block,
        ret_ty: Option<Ty>,
        entry: Stage,
    ) -> Stage {
        let mut scopes = Scopes::new();
        for p in params {
            let ck = match p.ty {
                Ty::Array(_) => {
                    // Handlers cannot take arrays (events carry data, not
                    // state); functions get arrays bound at the call site,
                    // which uses `check_fun_call` instead of this path.
                    self.diags.push(Diagnostic::error(
                        format!("handler `{owner}` cannot take an array parameter"),
                        p.span,
                    ));
                    continue;
                }
                t => CkTy::Val(t),
            };
            if !scopes.insert(&p.name.name, ck) {
                self.diags.push(Diagnostic::error(
                    format!("duplicate parameter `{}`", p.name),
                    p.name.span,
                ));
            }
        }
        let (stage, returns) = self.check_block(body, &mut scopes, entry, ret_ty);
        if let Some(rt) = ret_ty {
            if rt != Ty::Void && !returns {
                self.diags.push(Diagnostic::error(
                    format!("function `{owner}` does not return a value on every path"),
                    body.span,
                ));
            }
        }
        stage
    }

    /// Check an instantiated function call. Binds array parameters to the
    /// caller's concrete globals, then re-checks the body starting at the
    /// caller's stage — this is effect polymorphism by substitution.
    fn check_fun_call(
        &mut self,
        callee: &Ident,
        args: &[Expr],
        scopes: &mut Scopes,
        stage: Stage,
    ) -> (CkTy, Stage) {
        let (ret_ty, params) = match self.info.funs.get(&callee.name) {
            Some(f) => f.clone(),
            None => unreachable!("caller checked existence"),
        };
        if args.len() != params.len() {
            self.diags.push(Diagnostic::error(
                format!(
                    "`{}` expects {} argument(s), got {}",
                    callee.name,
                    params.len(),
                    args.len()
                ),
                callee.span,
            ));
            return (CkTy::Val(ret_ty), stage);
        }
        if self.call_stack.contains(&callee.name) {
            self.diags.push(
                Diagnostic::error(format!("recursive call to `{}`", callee.name), callee.span)
                    .with_help(
                        "functions execute within a single pipeline pass and cannot recurse; \
                     to iterate over time, `generate` a recursive *event* instead (§3.1)",
                    )
                    .with_code("E0402"),
            );
            return (CkTy::Val(ret_ty), stage);
        }

        // Evaluate arguments left to right, threading the stage: argument
        // expressions may themselves touch state.
        let mut cur = stage;
        let mut fun_scopes = Scopes::new();
        for (p, a) in params.iter().zip(args) {
            match p.ty {
                Ty::Array(w) => {
                    let gid = self.resolve_array_arg(a, scopes);
                    if let Some(gid) = gid {
                        let g = &self.info.globals[gid.0];
                        if g.cell_width != w {
                            self.diags.push(
                                Diagnostic::error(
                                    format!(
                                        "array `{}` has cell width {}, but parameter `{}` \
                                         requires Array<<{w}>>",
                                        g.name, g.cell_width, p.name
                                    ),
                                    a.span,
                                )
                                .with_note("declared here", g.span),
                            );
                        }
                        fun_scopes.insert(&p.name.name, CkTy::ArrayRef(gid));
                    }
                }
                t => {
                    let (aty, s2) = self.check_expr(a, scopes, cur, Some(t));
                    cur = s2;
                    self.expect_val(&aty, t, a.span);
                    fun_scopes.insert(&p.name.name, CkTy::Val(t));
                }
            }
        }

        let body = self
            .program
            .decls
            .iter()
            .find_map(|d| match &d.kind {
                DeclKind::Fun { name, body, .. } if name.name == callee.name => Some(body),
                _ => None,
            })
            .expect("function body exists");

        self.call_stack.push(callee.name.clone());
        let (out, returns) = self.check_block(body, &mut fun_scopes, cur, Some(ret_ty));
        self.call_stack.pop();
        if ret_ty != Ty::Void && !returns {
            self.diags.push(Diagnostic::error(
                format!(
                    "function `{}` does not return a value on every path",
                    callee.name
                ),
                callee.span,
            ));
        }
        (CkTy::Val(ret_ty), out)
    }

    /// Resolve an expression in array-argument position to a global.
    fn resolve_array_arg(&mut self, e: &Expr, scopes: &Scopes) -> Option<GlobalId> {
        match &e.kind {
            ExprKind::Var(id) => {
                if let Some(CkTy::ArrayRef(gid)) = scopes.lookup(&id.name) {
                    return Some(gid);
                }
                if let Some(g) = self.info.global(&id.name) {
                    return Some(g.id);
                }
                self.diags.push(
                    Diagnostic::error(format!("`{}` is not a global array", id.name), id.span)
                        .with_help("declare it with `global name = new Array<<w>>(n);`"),
                );
                None
            }
            _ => {
                self.diags.push(Diagnostic::error(
                    "expected the name of a global array here",
                    e.span,
                ));
                None
            }
        }
    }

    /// Check a block; returns (exit stage, definitely-returns).
    fn check_block(
        &mut self,
        block: &Block,
        scopes: &mut Scopes,
        mut stage: Stage,
        ret_ty: Option<Ty>,
    ) -> (Stage, bool) {
        scopes.push();
        let mut returns = false;
        for stmt in &block.stmts {
            if returns && self.opts.warn_dead_code {
                self.diags.push(
                    Diagnostic::warning("unreachable statement", stmt.span).with_code("W0002"),
                );
            }
            let (s2, r) = self.check_stmt(stmt, scopes, stage, ret_ty);
            stage = s2;
            returns |= r;
        }
        scopes.pop();
        (stage, returns)
    }

    fn check_stmt(
        &mut self,
        stmt: &Stmt,
        scopes: &mut Scopes,
        stage: Stage,
        ret_ty: Option<Ty>,
    ) -> (Stage, bool) {
        match &stmt.kind {
            StmtKind::Local { ty, name, init } => {
                let (ity, s2) = self.check_expr(init, scopes, stage, *ty);
                let final_ty = match (ty, &ity) {
                    (Some(t), _) => {
                        self.expect_val(&ity, *t, init.span);
                        *t
                    }
                    (None, CkTy::Val(t)) => *t,
                    (None, CkTy::ArrayRef(_)) => {
                        self.diags.push(Diagnostic::error(
                            "cannot bind an array to a local variable",
                            init.span,
                        ));
                        Ty::Int(32)
                    }
                };
                if !scopes.insert(&name.name, CkTy::Val(final_ty)) {
                    self.diags.push(Diagnostic::error(
                        format!("`{name}` is already defined in this handler"),
                        name.span,
                    ));
                }
                (s2, false)
            }
            StmtKind::Assign { name, value } => {
                let target = scopes.lookup(&name.name);
                match target {
                    Some(CkTy::Val(t)) => {
                        let (vty, s2) = self.check_expr(value, scopes, stage, Some(t));
                        self.expect_val(&vty, t, value.span);
                        (s2, false)
                    }
                    Some(CkTy::ArrayRef(_)) => {
                        self.diags.push(
                            Diagnostic::error(
                                format!("cannot assign to array `{name}`"),
                                name.span,
                            )
                            .with_help("use Array.set / Array.setm to write array cells"),
                        );
                        (stage, false)
                    }
                    None => {
                        let msg = if self.info.consts.contains_key(&name.name) {
                            format!("cannot assign to constant `{name}`")
                        } else {
                            format!("assignment to undeclared variable `{name}`")
                        };
                        self.diags.push(Diagnostic::error(msg, name.span));
                        (stage, false)
                    }
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (cty, s0) = self.check_expr(cond, scopes, stage, Some(Ty::Bool));
                self.expect_val(&cty, Ty::Bool, cond.span);
                let (s_then, r_then) = self.check_block(then_blk, scopes, s0.clone(), ret_ty);
                match else_blk {
                    Some(e) => {
                        let (s_else, r_else) = self.check_block(e, scopes, s0, ret_ty);
                        (Stage::join(s_then, s_else), r_then && r_else)
                    }
                    None => (Stage::join(s_then, s0), false),
                }
            }
            StmtKind::Generate(e) | StmtKind::MGenerate(e) => {
                let (ty, s2) = self.check_expr(e, scopes, stage, Some(Ty::Event));
                self.expect_val(&ty, Ty::Event, e.span);
                (s2, false)
            }
            StmtKind::Return(val) => {
                match (ret_ty, val) {
                    (None, None) => {}
                    (None, Some(v)) => {
                        self.diags
                            .push(Diagnostic::error("handlers cannot return a value", v.span));
                    }
                    (Some(Ty::Void), Some(v)) => {
                        self.diags.push(Diagnostic::error(
                            "void function cannot return a value",
                            v.span,
                        ));
                    }
                    (Some(Ty::Void), None) => {}
                    (Some(t), Some(v)) => {
                        let (vty, s2) = self.check_expr(v, scopes, stage.clone(), Some(t));
                        self.expect_val(&vty, t, v.span);
                        return (s2, true);
                    }
                    (Some(_), None) => {
                        self.diags.push(Diagnostic::error(
                            "this function must return a value",
                            stmt.span,
                        ));
                    }
                }
                (stage, true)
            }
            StmtKind::Printf { fmt, args } => {
                let holes = fmt.matches('%').count() - 2 * fmt.matches("%%").count();
                if holes != args.len() {
                    self.diags.push(Diagnostic::error(
                        format!(
                            "format string has {holes} placeholder(s) but {} argument(s) \
                             were supplied",
                            args.len()
                        ),
                        stmt.span,
                    ));
                }
                let mut cur = stage;
                for a in args {
                    let (ty, s2) = self.check_expr(a, scopes, cur, None);
                    cur = s2;
                    if let CkTy::Val(t) = ty {
                        if t.int_width().is_none() && t != Ty::Bool {
                            self.diags.push(Diagnostic::error(
                                format!("cannot print a value of type {t}"),
                                a.span,
                            ));
                        }
                    }
                }
                (cur, false)
            }
            StmtKind::Expr(e) => {
                let (_, s2) = self.check_expr(e, scopes, stage, None);
                (s2, false)
            }
        }
    }

    /// Check an expression. `expected` lets integer literals adopt a width.
    /// Returns the expression's type and the stage after evaluating it.
    fn check_expr(
        &mut self,
        e: &Expr,
        scopes: &mut Scopes,
        stage: Stage,
        expected: Option<Ty>,
    ) -> (CkTy, Stage) {
        match &e.kind {
            ExprKind::Int { value, width } => {
                let w = width.or(expected.and_then(Ty::int_width)).unwrap_or(32);
                if w < 64 && *value >= (1u64 << w) {
                    self.diags.push(Diagnostic::error(
                        format!("literal {value} does not fit in int<<{w}>>"),
                        e.span,
                    ));
                }
                (CkTy::Val(Ty::Int(w)), stage)
            }
            ExprKind::Bool(_) => (CkTy::Val(Ty::Bool), stage),
            ExprKind::Var(id) => {
                if id.name == "SELF" {
                    return (CkTy::Val(Ty::Int(32)), stage);
                }
                if let Some(b) = scopes.lookup(&id.name) {
                    return (b, stage);
                }
                if let Some(c) = self.info.consts.get(&id.name) {
                    return (CkTy::Val(c.ty), stage);
                }
                if self.info.groups.contains_key(&id.name) {
                    return (CkTy::Val(Ty::Group), stage);
                }
                if let Some(g) = self.info.global(&id.name) {
                    return (CkTy::ArrayRef(g.id), stage);
                }
                let mut d = Diagnostic::error(format!("unbound variable `{}`", id.name), id.span);
                if self.info.memops.contains_key(&id.name) {
                    d = d.with_help("memops can only be used as arguments to Array.get/set/update");
                }
                self.diags.push(d);
                (CkTy::Val(Ty::Int(32)), stage)
            }
            ExprKind::Unary { op, arg } => match op {
                UnOp::Not => {
                    let (t, s) = self.check_expr(arg, scopes, stage, Some(Ty::Bool));
                    self.expect_val(&t, Ty::Bool, arg.span);
                    (CkTy::Val(Ty::Bool), s)
                }
                UnOp::Neg | UnOp::BitNot => {
                    let (t, s) = self.check_expr(arg, scopes, stage, expected);
                    let w = match t {
                        CkTy::Val(Ty::Int(w)) => w,
                        _ => {
                            self.diags.push(Diagnostic::error(
                                format!("`{}` requires an integer operand", op.symbol()),
                                arg.span,
                            ));
                            32
                        }
                    };
                    (CkTy::Val(Ty::Int(w)), s)
                }
            },
            ExprKind::Binary { op, lhs, rhs } => {
                self.check_binary(e, *op, lhs, rhs, scopes, stage, expected)
            }
            ExprKind::Cast { width, arg } => {
                let (t, s) = self.check_expr(arg, scopes, stage, None);
                if !matches!(t, CkTy::Val(Ty::Int(_) | Ty::Bool)) {
                    self.diags.push(Diagnostic::error(
                        "only integers and booleans can be cast",
                        arg.span,
                    ));
                }
                (CkTy::Val(Ty::Int(*width)), s)
            }
            ExprKind::Hash { width, args } => {
                let mut cur = stage;
                for a in args {
                    let (t, s) = self.check_expr(a, scopes, cur, None);
                    cur = s;
                    if !matches!(t, CkTy::Val(Ty::Int(_) | Ty::Bool)) {
                        self.diags.push(Diagnostic::error(
                            "hash arguments must be integers or booleans",
                            a.span,
                        ));
                    }
                }
                (CkTy::Val(Ty::Int(*width)), cur)
            }
            ExprKind::Call { callee, args } => {
                // Event constructor?
                if let Some(ev) = self.info.event(&callee.name).cloned() {
                    if args.len() != ev.params.len() {
                        self.diags.push(
                            Diagnostic::error(
                                format!(
                                    "event `{}` carries {} field(s), got {}",
                                    callee.name,
                                    ev.params.len(),
                                    args.len()
                                ),
                                e.span,
                            )
                            .with_note("event declared here", ev.span),
                        );
                    }
                    let mut cur = stage;
                    for (p, a) in ev.params.iter().zip(args) {
                        let (t, s) = self.check_expr(a, scopes, cur, Some(p.ty));
                        cur = s;
                        self.expect_val(&t, p.ty, a.span);
                    }
                    return (CkTy::Val(Ty::Event), cur);
                }
                if self.info.funs.contains_key(&callee.name) {
                    return self.check_fun_call(callee, args, scopes, stage);
                }
                if self.info.memops.contains_key(&callee.name) {
                    self.diags.push(
                        Diagnostic::error(
                            format!("memop `{}` cannot be called directly", callee.name),
                            callee.span,
                        )
                        .with_help(
                            "memops execute inside a stateful ALU; pass them to \
                             Array.get/set/update instead",
                        ),
                    );
                } else {
                    self.diags.push(Diagnostic::error(
                        format!("unknown function or event `{}`", callee.name),
                        callee.span,
                    ));
                }
                (CkTy::Val(Ty::Int(32)), stage)
            }
            ExprKind::BuiltinCall {
                builtin,
                args,
                span_path,
            } => self.check_builtin(e, *builtin, args, *span_path, scopes, stage),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_binary(
        &mut self,
        e: &Expr,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        scopes: &mut Scopes,
        stage: Stage,
        expected: Option<Ty>,
    ) -> (CkTy, Stage) {
        if op.is_logical() {
            let (lt, s1) = self.check_expr(lhs, scopes, stage, Some(Ty::Bool));
            self.expect_val(&lt, Ty::Bool, lhs.span);
            let (rt, s2) = self.check_expr(rhs, scopes, s1, Some(Ty::Bool));
            self.expect_val(&rt, Ty::Bool, rhs.span);
            return (CkTy::Val(Ty::Bool), s2);
        }
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            let (lt, s1) = self.check_expr(lhs, scopes, stage, expected);
            let w = self.int_width_of(&lt, lhs.span);
            let (rt, s2) = self.check_expr(rhs, scopes, s1, Some(Ty::Int(32)));
            self.int_width_of(&rt, rhs.span);
            return (CkTy::Val(Ty::Int(w)), s2);
        }

        // Arithmetic / bitwise / comparison: both sides must be ints of the
        // same width (or bools for ==/!=). Infer the non-literal side first
        // so literals adopt its width.
        let lhs_literal = matches!(lhs.kind, ExprKind::Int { .. });
        let rhs_literal = matches!(rhs.kind, ExprKind::Int { .. });
        let (lt, rt, s_out) = if lhs_literal && !rhs_literal {
            let (rt, s1) = self.check_expr(rhs, scopes, stage, expected);
            let want = match rt {
                CkTy::Val(t) => Some(t),
                _ => None,
            };
            let (lt, s2) = self.check_expr(lhs, scopes, s1, want);
            (lt, rt, s2)
        } else {
            let (lt, s1) = self.check_expr(lhs, scopes, stage, expected);
            let want = match lt {
                CkTy::Val(t) => Some(t),
                _ => None,
            };
            let (rt, s2) = self.check_expr(rhs, scopes, s1, want);
            (lt, rt, s2)
        };

        if op.is_comparison() {
            match (&lt, &rt) {
                (CkTy::Val(Ty::Bool), CkTy::Val(Ty::Bool))
                    if matches!(op, BinOp::Eq | BinOp::Neq) => {}
                (CkTy::Val(Ty::Int(a)), CkTy::Val(Ty::Int(b))) => {
                    if a != b {
                        self.width_mismatch(e, *a, *b);
                    }
                }
                _ => {
                    self.diags.push(Diagnostic::error(
                        format!("`{}` requires two integers of equal width", op.symbol()),
                        e.span,
                    ));
                }
            }
            return (CkTy::Val(Ty::Bool), s_out);
        }

        let wa = self.int_width_of(&lt, lhs.span);
        let wb = self.int_width_of(&rt, rhs.span);
        if wa != wb {
            self.width_mismatch(e, wa, wb);
        }
        (CkTy::Val(Ty::Int(wa)), s_out)
    }

    fn check_builtin(
        &mut self,
        e: &Expr,
        builtin: Builtin,
        args: &[Expr],
        span_path: Span,
        scopes: &mut Scopes,
        stage: Stage,
    ) -> (CkTy, Stage) {
        let argc_err = |this: &mut Self, want: &str| {
            this.diags.push(Diagnostic::error(
                format!(
                    "{} expects {want} argument(s), got {}",
                    builtin.path(),
                    args.len()
                ),
                span_path,
            ));
        };
        match builtin {
            Builtin::ArrayGet
            | Builtin::ArrayGetm
            | Builtin::ArraySet
            | Builtin::ArraySetm
            | Builtin::ArrayUpdate => {
                let want: &[usize] = match builtin {
                    Builtin::ArrayGet => &[2],
                    Builtin::ArraySet => &[3],
                    Builtin::ArrayGetm | Builtin::ArraySetm => &[4],
                    Builtin::ArrayUpdate => &[6],
                    _ => unreachable!(),
                };
                if !want.contains(&args.len()) {
                    argc_err(self, &format!("{want:?}"));
                    return (CkTy::Val(Ty::Int(32)), stage);
                }
                let Some(gid) = self.resolve_array_arg(&args[0], scopes) else {
                    return (CkTy::Val(Ty::Int(32)), stage);
                };
                let cell_w = self.info.globals[gid.0].cell_width;
                // Index.
                let (it, s1) = self.check_expr(&args[1], scopes, stage, Some(Ty::Int(32)));
                self.int_width_of(&it, args[1].span);
                // Memop-position and value-position arguments.
                let mut cur = s1;
                match builtin {
                    Builtin::ArraySet => {
                        let (vt, s2) =
                            self.check_expr(&args[2], scopes, cur, Some(Ty::Int(cell_w)));
                        self.expect_val(&vt, Ty::Int(cell_w), args[2].span);
                        cur = s2;
                    }
                    Builtin::ArrayGetm | Builtin::ArraySetm => {
                        self.expect_memop(&args[2]);
                        let (vt, s2) =
                            self.check_expr(&args[3], scopes, cur, Some(Ty::Int(cell_w)));
                        self.expect_val(&vt, Ty::Int(cell_w), args[3].span);
                        cur = s2;
                    }
                    Builtin::ArrayUpdate => {
                        self.expect_memop(&args[2]);
                        self.reject_complex_in_update(&args[2]);
                        self.reject_complex_in_update(&args[4]);
                        let (gt, s2) =
                            self.check_expr(&args[3], scopes, cur, Some(Ty::Int(cell_w)));
                        self.expect_val(&gt, Ty::Int(cell_w), args[3].span);
                        self.expect_memop(&args[4]);
                        let (st, s3) = self.check_expr(&args[5], scopes, s2, Some(Ty::Int(cell_w)));
                        self.expect_val(&st, Ty::Int(cell_w), args[5].span);
                        cur = s3;
                    }
                    _ => {}
                }
                // The ordered-effect step: `stage ≤ gid` or error (§5.2).
                let out = self.access_global(gid, e.span, cur);
                let ret = match builtin {
                    Builtin::ArraySet | Builtin::ArraySetm => Ty::Void,
                    _ => Ty::Int(cell_w),
                };
                (CkTy::Val(ret), out)
            }
            Builtin::EventDelay => {
                if args.len() != 2 {
                    argc_err(self, "2");
                    return (CkTy::Val(Ty::Event), stage);
                }
                let (et, s1) = self.check_expr(&args[0], scopes, stage, Some(Ty::Event));
                self.expect_val(&et, Ty::Event, args[0].span);
                let (dt, s2) = self.check_expr(&args[1], scopes, s1, Some(Ty::Int(32)));
                self.int_width_of(&dt, args[1].span);
                (CkTy::Val(Ty::Event), s2)
            }
            Builtin::EventLocate => {
                if args.len() != 2 {
                    argc_err(self, "2");
                    return (CkTy::Val(Ty::Event), stage);
                }
                let (et, s1) = self.check_expr(&args[0], scopes, stage, Some(Ty::Event));
                self.expect_val(&et, Ty::Event, args[0].span);
                let (lt, s2) = self.check_expr(&args[1], scopes, s1, Some(Ty::Int(32)));
                self.int_width_of(&lt, args[1].span);
                (CkTy::Val(Ty::Event), s2)
            }
            Builtin::EventMLocate => {
                if args.len() != 2 {
                    argc_err(self, "2");
                    return (CkTy::Val(Ty::Event), stage);
                }
                let (et, s1) = self.check_expr(&args[0], scopes, stage, Some(Ty::Event));
                self.expect_val(&et, Ty::Event, args[0].span);
                let (gt, s2) = self.check_expr(&args[1], scopes, s1, Some(Ty::Group));
                self.expect_val(&gt, Ty::Group, args[1].span);
                (CkTy::Val(Ty::Event), s2)
            }
            Builtin::SysTime | Builtin::SysSelf | Builtin::SysPort => {
                if !args.is_empty() {
                    argc_err(self, "0");
                }
                (CkTy::Val(Ty::Int(32)), stage)
            }
        }
    }

    /// The heart of §5: check and advance the stage for an access to `gid`.
    fn access_global(&mut self, gid: GlobalId, span: Span, stage: Stage) -> Stage {
        let g = &self.info.globals[gid.0];
        if gid.0 < stage.current {
            let mut d = Diagnostic::error(
                format!("global `{}` is accessed out of declaration order", g.name),
                span,
            )
            .with_note(
                format!("`{}` was declared here (stage {})", g.name, gid.0),
                g.span,
            );
            if let Some((prev, pspan)) = &stage.last {
                d = d.with_note(
                    format!(
                        "a later-declared global `{prev}` was already accessed here, \
                         so the packet has passed `{}`'s pipeline stage",
                        g.name
                    ),
                    *pspan,
                );
            }
            d = d.with_help(
                "declaration order of globals is the pipeline layout specification (§5.1); \
                 reorder the `global` declarations, or split this computation into a second \
                 event so it traverses the pipeline again",
            );
            self.diags.push(d.with_code("E0401"));
            // Recover: leave the stage unchanged so we report each bad
            // access once.
            return stage;
        }
        Stage {
            current: gid.0 + 1,
            last: Some((g.name.clone(), span)),
        }
    }

    /// Appendix C: a compound-condition memop consumes the sALU's whole
    /// predicate capacity, so `Array.update` (which must fit *two* memops
    /// in one instruction) cannot take one.
    fn reject_complex_in_update(&mut self, e: &Expr) {
        if let ExprKind::Var(id) = &e.kind {
            if let Some(m) = self.memops.get(&id.name) {
                if m.is_complex() {
                    self.diags.push(
                        Diagnostic::error(
                            format!(
                                "memop `{}` has a compound condition and cannot be used                                  in Array.update",
                                id.name
                            ),
                            e.span,
                        )
                        .with_help(
                            "an Array.update compiles two memops into one sALU                              instruction; a compound condition already uses both                              predicate slots (Appendix C). Use this memop with                              Array.get/Array.set, or simplify the condition",
                        ),
                    );
                }
            }
        }
    }

    fn expect_memop(&mut self, e: &Expr) {
        // Membership resolves through the declaration table so that a memop
        // whose *body* failed validation does not also cascade into a bogus
        // "not a declared memop" here.
        match &e.kind {
            ExprKind::Var(id) if self.info.memops.contains_key(&id.name) => {}
            ExprKind::Var(id) => {
                self.diags.push(
                    Diagnostic::error(format!("`{}` is not a declared memop", id.name), id.span)
                        .with_help("declare it with `memop name(int stored, int arg) { .. }`"),
                );
            }
            _ => {
                self.diags.push(Diagnostic::error(
                    "expected a memop name in this argument position",
                    e.span,
                ));
            }
        }
    }

    fn expect_val(&mut self, got: &CkTy, want: Ty, span: Span) {
        match got {
            CkTy::Val(t) if *t == want => {}
            CkTy::Val(t) => {
                self.diags.push(Diagnostic::error(
                    format!("expected {want}, found {t}"),
                    span,
                ));
            }
            CkTy::ArrayRef(gid) => {
                let g = &self.info.globals[gid.0];
                self.diags.push(Diagnostic::error(
                    format!("expected {want}, found array `{}`", g.name),
                    span,
                ));
            }
        }
    }

    fn int_width_of(&mut self, t: &CkTy, span: Span) -> u32 {
        match t {
            CkTy::Val(Ty::Int(w)) => *w,
            _ => {
                self.diags
                    .push(Diagnostic::error("expected an integer", span));
                32
            }
        }
    }

    fn width_mismatch(&mut self, e: &Expr, a: u32, b: u32) {
        self.diags.push(
            Diagnostic::error(
                format!("operand widths differ: int<<{a}>> vs int<<{b}>>"),
                e.span,
            )
            .with_help("insert an explicit cast, e.g. `(int<<{w}>>) x`")
            .with_code("E0403"),
        );
    }
}

/// Does any handler or function in `program` call `fun_name`?
fn program_calls(program: &Program, fun_name: &str) -> bool {
    fn expr_calls(e: &Expr, fun: &str) -> bool {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                callee.name == fun || args.iter().any(|a| expr_calls(a, fun))
            }
            ExprKind::BuiltinCall { args, .. } | ExprKind::Hash { args, .. } => {
                args.iter().any(|a| expr_calls(a, fun))
            }
            ExprKind::Binary { lhs, rhs, .. } => expr_calls(lhs, fun) || expr_calls(rhs, fun),
            ExprKind::Unary { arg, .. } | ExprKind::Cast { arg, .. } => expr_calls(arg, fun),
            _ => false,
        }
    }
    fn block_calls(b: &Block, fun: &str) -> bool {
        b.stmts.iter().any(|s| match &s.kind {
            StmtKind::Local { init, .. } => expr_calls(init, fun),
            StmtKind::Assign { value, .. } => expr_calls(value, fun),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                expr_calls(cond, fun)
                    || block_calls(then_blk, fun)
                    || else_blk.as_ref().is_some_and(|e| block_calls(e, fun))
            }
            StmtKind::Generate(e) | StmtKind::MGenerate(e) | StmtKind::Expr(e) => {
                expr_calls(e, fun)
            }
            StmtKind::Return(Some(e)) => expr_calls(e, fun),
            StmtKind::Return(None) => false,
            StmtKind::Printf { args, .. } => args.iter().any(|a| expr_calls(a, fun)),
        })
    }
    program.decls.iter().any(|d| match &d.kind {
        DeclKind::Handler { body, .. } | DeclKind::Fun { body, .. } => block_calls(body, fun_name),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_frontend::parse_program;

    fn check_src(src: &str) -> Result<CheckedProgram, Diagnostics> {
        check(parse_program(src).unwrap())
    }

    fn first_error(src: &str) -> Diagnostic {
        let ds = check_src(src).expect_err("expected check failure");
        ds.items
            .into_iter()
            .find(|d| d.level == crate::Level::Error)
            .expect("an error")
    }

    // --- the paper's Figure 5 -------------------------------------------

    #[test]
    fn figure5_disordered_program_rejected() {
        let src = r#"
            const int SIZE = 16;
            global arr1 = new Array<<32>>(SIZE);
            global arr2 = new Array<<32>>(SIZE);
            event setArr1(int idx, int data);
            event setArr2(int idx, int data);
            handle setArr1(int idx, int data) {
                int x = Array.get(arr2, idx);
                Array.set(arr1, idx, x);
            }
            handle setArr2(int idx, int data) {
                int x = Array.get(arr1, idx);
                Array.set(arr2, idx, x);
            }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("arr1"), "{d}");
        assert!(d.message.contains("out of declaration order"), "{d}");
        // The error must name the conflicting earlier access.
        assert!(
            d.notes.iter().any(|(n, _)| n.contains("arr2")),
            "notes should reference arr2: {d:?}"
        );
    }

    #[test]
    fn figure5_fixed_by_reordering_handler() {
        // Same state, but both handlers access in declaration order.
        let src = r#"
            const int SIZE = 16;
            global arr1 = new Array<<32>>(SIZE);
            global arr2 = new Array<<32>>(SIZE);
            event setBoth(int idx, int data);
            handle setBoth(int idx, int data) {
                int x = Array.get(arr1, idx);
                Array.set(arr2, idx, x);
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    // --- effect polymorphism via instantiation ---------------------------

    #[test]
    fn function_usable_at_multiple_stages() {
        let src = r#"
            global a = new Array<<32>>(8);
            global b = new Array<<32>>(8);
            memop plus(int m, int x) { return m + x; }
            fun int bump(Array<<32>> arr, int idx) {
                return Array.get(arr, idx, plus, 1);
            }
            event go(int idx);
            handle go(int idx) {
                int x = bump(a, idx);
                int y = bump(b, idx);
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn function_instantiation_catches_disorder() {
        let src = r#"
            global a = new Array<<32>>(8);
            global b = new Array<<32>>(8);
            fun int rd(Array<<32>> arr, int idx) { return Array.get(arr, idx); }
            event go(int idx);
            handle go(int idx) {
                int y = rd(b, idx);
                int x = rd(a, idx);
            }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("out of declaration order"), "{d}");
    }

    #[test]
    fn recursion_rejected_with_generate_hint() {
        let src = r#"
            fun int f(int x) { return f(x); }
            event go(int x);
            handle go(int x) { int y = f(x); }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("recursive"), "{d}");
        assert!(d.notes.iter().any(|(n, _)| n.contains("generate")), "{d:?}");
    }

    // --- branches ---------------------------------------------------------

    #[test]
    fn branch_join_takes_max_stage() {
        // then-branch reaches stage 2, else stays at 0; accessing stage-1
        // global afterwards must fail because the *pipeline* has to lay the
        // handler out for the deeper branch.
        let src = r#"
            global a = new Array<<32>>(8);
            global b = new Array<<32>>(8);
            event go(int x);
            handle go(int x) {
                if (x == 0) {
                    Array.set(b, 0, x);
                }
                Array.set(a, 0, x);
            }
        "#;
        let d = first_error(src);
        assert!(d.message.contains('a'), "{d}");
    }

    #[test]
    fn same_array_twice_rejected() {
        // Accessing a global advances past it: a second access would need a
        // second sALU pass over the same stage.
        let src = r#"
            global a = new Array<<32>>(8);
            event go(int x);
            handle go(int x) {
                Array.set(a, 0, x);
                Array.set(a, 1, x);
            }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("out of declaration order"), "{d}");
    }

    #[test]
    fn parallel_branches_may_access_same_stage() {
        // Two exclusive branches touching the same array is fine: only one
        // executes per packet.
        let src = r#"
            global a = new Array<<32>>(8);
            event go(int x);
            handle go(int x) {
                if (x == 0) { Array.set(a, 0, x); } else { Array.set(a, 1, x); }
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    // --- plain typing -----------------------------------------------------

    #[test]
    fn event_constructor_types_args() {
        let src = r#"
            event reply(int<<16>> code);
            event go(int x);
            handle go(int x) { generate reply(x); }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("int<<16>>"), "{d}");
    }

    #[test]
    fn generate_requires_event() {
        let d = first_error("event go(int x); handle go(int x) { generate x; }");
        assert!(d.message.contains("expected event"), "{d}");
    }

    #[test]
    fn width_mismatch_reported() {
        let src = r#"
            event go(int<<16>> a, int<<32>> b);
            handle go(int<<16>> a, int<<32>> b) { int c = a + b; }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("widths differ"), "{d}");
    }

    #[test]
    fn literal_adopts_context_width() {
        let src = r#"
            event go(int<<8>> a);
            handle go(int<<8>> a) { int<<8>> b = a + 1; }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn literal_too_wide_for_context() {
        let src = r#"
            event go(int<<8>> a);
            handle go(int<<8>> a) { int<<8>> b = a + 300; }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("does not fit"), "{d}");
    }

    #[test]
    fn handler_without_event_rejected() {
        let d = first_error("handle orphan(int x) { int y = x; }");
        assert!(d.message.contains("no matching `event`"), "{d}");
    }

    #[test]
    fn handler_signature_must_match_event() {
        let d = first_error("event e(int<<16>> x); handle e(int x) { int y = x; }");
        assert!(d.message.contains("does not match"), "{d}");
    }

    #[test]
    fn memop_direct_call_rejected() {
        let src = r#"
            memop plus(int m, int x) { return m + x; }
            event go(int x);
            handle go(int x) { int y = plus(x, x); }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("cannot be called directly"), "{d}");
    }

    #[test]
    fn array_update_full_form_checks() {
        let src = r#"
            global cts = new Array<<32>>(64);
            memop read(int m, int x) { return m; }
            memop plus(int m, int x) { return m + x; }
            event go(int i);
            handle go(int i) {
                int old = Array.update(cts, i, read, 0, plus, 1);
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn non_memop_in_memop_position() {
        let src = r#"
            global cts = new Array<<32>>(64);
            event go(int i);
            handle go(int i) { int x = Array.get(cts, i, i, 1); }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("not a declared memop"), "{d}");
    }

    #[test]
    fn array_cell_width_enforced() {
        let src = r#"
            global flags = new Array<<8>>(64);
            event go(int i);
            handle go(int i) { Array.set(flags, i, i); }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("expected int<<8>>"), "{d}");
    }

    #[test]
    fn unreachable_code_warns() {
        let src = r#"
            event go(int x);
            fun int f(int x) { return x; int y = x; return y; }
            handle go(int x) { int z = f(x); }
        "#;
        let p = check_src(src);
        // Warnings don't fail the check, but are recorded.
        assert!(p.is_ok());
    }

    #[test]
    fn missing_return_path_rejected() {
        let src = r#"
            event go(int x);
            fun int f(int x) { if (x == 0) { return 1; } }
            handle go(int x) { int z = f(x); }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("every path"), "{d}");
    }

    #[test]
    fn self_is_predefined() {
        let src = r#"
            event reply(int who);
            event go(int x);
            handle go(int x) { generate Event.locate(reply(SELF), x); }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn mlocate_requires_group() {
        let src = r#"
            event c();
            event go(int x);
            handle go(int x) { mgenerate Event.mlocate(c(), x); }
        "#;
        let d = first_error(src);
        assert!(d.message.contains("expected group"), "{d}");
    }

    #[test]
    fn paper_event_combinator_example_checks() {
        let src = r#"
            const group GRP = {2, 3};
            event a();
            event b();
            event c();
            handle a() {
                generate b();
                mgenerate Event.delay(Event.mlocate(c(), GRP), 10000);
            }
        "#;
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn assignment_to_const_rejected() {
        let src = "const int K = 4; event go(int x); handle go(int x) { K = x; }";
        let d = first_error(src);
        assert!(d.message.contains("constant"), "{d}");
    }

    #[test]
    fn printf_arity_checked() {
        let src = r#"event go(int x); handle go(int x) { printf("a %d b %d", x); }"#;
        let d = first_error(src);
        assert!(d.message.contains("placeholder"), "{d}");
    }
}
