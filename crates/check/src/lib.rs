//! # lucid-check
//!
//! Semantic analysis for Lucid: symbol resolution, the memop validator
//! (§4.2), and the ordered type-and-effect system (§5 / Appendix A) that
//! together implement the paper's "correct-by-construction" approach to
//! data-plane state.
//!
//! The entry point is [`check`], which takes a parsed
//! [`Program`](lucid_frontend::Program) and returns a [`CheckedProgram`]
//! carrying the symbol tables ([`ProgramInfo`]) and validated memop IR that
//! the interpreter (`lucid-interp`) and compiler backend (`lucid-backend`)
//! both consume.
//!
//! The [`calculus`] module is an executable rendition of the appendix's
//! formal system, with property tests standing in for the paper-and-pencil
//! soundness proof.

#![forbid(unsafe_code)]

pub mod calculus;
pub mod lint;
pub mod memop;
pub mod symbols;
pub mod typecheck;

pub use lint::lint;
pub use lucid_frontend::diag::{Diagnostic, Diagnostics, Level};
pub use memop::{eval_memop, validate_memops, MemopAtom, MemopBody, MemopCell, MemopIr};
pub use symbols::{mask, ConstInfo, EventInfo, GlobalId, GlobalInfo, GroupInfo, ProgramInfo};
pub use typecheck::{analyze, check, Analysis, CheckOptions, CheckedProgram};

/// Parse and check in one call.
pub fn parse_and_check(src: &str) -> Result<CheckedProgram, Diagnostics> {
    let program = lucid_frontend::parse_program(src).map_err(|d| {
        let mut ds = Diagnostics::new();
        ds.push(d);
        ds
    })?;
    check(program)
}
