//! The formal core calculus of Appendix A/B, executable.
//!
//! The paper proves soundness of the ordered type-and-effect system on a toy
//! ML-like language with `n` ordered global ref cells `g₀ … gₙ₋₁`:
//!
//! ```text
//! τ ::= Unit | Int | ref(T, ε) | (τ, ε) → (τ, ε)
//! e ::= v | x | e + e | let x = e in e | !e | e := e | e e
//! ```
//!
//! The typing judgement is `Γ, ε₁ ⊢ e : τ, ε₂`: starting at stage `ε₁` the
//! expression has type `τ` and finishes at stage `ε₂`. Dereferencing or
//! updating `gᵢ` requires the current stage be `≤ i` and moves it to `i+1`.
//!
//! This module implements the typing rules and the small-step operational
//! semantics *exactly as written in the appendix*, so that the paper's
//! soundness theorem — well-typed programs never get stuck trying to access
//! data in an earlier pipeline stage — can be validated mechanically.
//! Property tests generate random well-typed terms and run them to a value,
//! asserting progress + preservation at every step.

use std::fmt;
use std::rc::Rc;

/// Base types of globals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseTy {
    Unit,
    Int,
}

/// Types, with stages (effects) baked into refs and arrows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTy {
    Unit,
    Int,
    /// `ref(T, ε)` — the type of global `g_ε`.
    Ref(BaseTy, usize),
    /// `(τ_in, ε_in) → (τ_out, ε_out)`.
    Arrow(Box<CTy>, usize, Box<CTy>, usize),
}

impl CTy {
    fn base(b: BaseTy) -> CTy {
        match b {
            BaseTy::Unit => CTy::Unit,
            BaseTy::Int => CTy::Int,
        }
    }
}

/// Expressions. Variables use de Bruijn *names* (strings) for readability in
/// counterexamples.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    Unit,
    Int(i64),
    Var(String),
    /// Global `g_i`.
    Global(usize),
    Plus(Rc<CExpr>, Rc<CExpr>),
    Let(String, Rc<CExpr>, Rc<CExpr>),
    /// `!e`.
    Deref(Rc<CExpr>),
    /// `e1 := e2` (note: appendix evaluates the *value* `e2` first, then the
    /// ref `e1`, per the UPDATE rule's premise order).
    Assign(Rc<CExpr>, Rc<CExpr>),
    /// `fun (x : τ, ε) → e`.
    Fun(String, CTy, usize, Rc<CExpr>),
    App(Rc<CExpr>, Rc<CExpr>),
}

impl CExpr {
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            CExpr::Unit | CExpr::Int(_) | CExpr::Global(_) | CExpr::Fun(..)
        )
    }
}

impl fmt::Display for CExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CExpr::Unit => write!(f, "()"),
            CExpr::Int(n) => write!(f, "{n}"),
            CExpr::Var(x) => write!(f, "{x}"),
            CExpr::Global(i) => write!(f, "g{i}"),
            CExpr::Plus(a, b) => write!(f, "({a} + {b})"),
            CExpr::Let(x, a, b) => write!(f, "(let {x} = {a} in {b})"),
            CExpr::Deref(e) => write!(f, "!{e}"),
            CExpr::Assign(r, v) => write!(f, "({r} := {v})"),
            CExpr::Fun(x, _, e_in, b) => write!(f, "(fun ({x}, {e_in}) -> {b})"),
            CExpr::App(a, b) => write!(f, "({a} {b})"),
        }
    }
}

/// The global signature: base type of each `gᵢ`.
pub type GlobalSig = Vec<BaseTy>;

/// Typing environment.
type Env = Vec<(String, CTy)>;

fn lookup(env: &Env, x: &str) -> Option<CTy> {
    env.iter()
        .rev()
        .find(|(n, _)| n == x)
        .map(|(_, t)| t.clone())
}

/// `Γ, ε₁ ⊢ e : τ, ε₂` — returns `(τ, ε₂)` or a description of the failure.
pub fn type_of(
    sig: &GlobalSig,
    env: &Env,
    stage: usize,
    e: &CExpr,
) -> Result<(CTy, usize), String> {
    match e {
        CExpr::Unit => Ok((CTy::Unit, stage)),
        CExpr::Int(_) => Ok((CTy::Int, stage)),
        CExpr::Var(x) => lookup(env, x)
            .map(|t| (t, stage))
            .ok_or_else(|| format!("unbound variable {x}")),
        CExpr::Global(i) => {
            let b = *sig.get(*i).ok_or_else(|| format!("no global g{i}"))?;
            Ok((CTy::Ref(b, *i), stage))
        }
        CExpr::Plus(a, b) => {
            let (ta, s1) = type_of(sig, env, stage, a)?;
            if ta != CTy::Int {
                return Err(format!("lhs of + is {ta:?}, not Int"));
            }
            let (tb, s2) = type_of(sig, env, s1, b)?;
            if tb != CTy::Int {
                return Err(format!("rhs of + is {tb:?}, not Int"));
            }
            Ok((CTy::Int, s2))
        }
        CExpr::Let(x, a, b) => {
            let (ta, s1) = type_of(sig, env, stage, a)?;
            let mut env2 = env.clone();
            env2.push((x.clone(), ta));
            type_of(sig, &env2, s1, b)
        }
        CExpr::Deref(r) => {
            let (tr, s2) = type_of(sig, env, stage, r)?;
            match tr {
                CTy::Ref(b, i) => {
                    // DEREF side condition: ε₂ ≤ ε₁ (the ref's stage).
                    if s2 <= i {
                        Ok((CTy::base(b), i + 1))
                    } else {
                        Err(format!("deref of g{i} at stage {s2} (stage already past)"))
                    }
                }
                other => Err(format!("deref of non-ref {other:?}")),
            }
        }
        CExpr::Assign(r, v) => {
            // UPDATE rule premise order: value first, then ref.
            let (tv, s1) = type_of(sig, env, stage, v)?;
            let (tr, s3) = type_of(sig, env, s1, r)?;
            match tr {
                CTy::Ref(b, i) => {
                    if tv != CTy::base(b) {
                        return Err(format!("assigning {tv:?} into ref of {b:?}"));
                    }
                    if s3 <= i {
                        Ok((CTy::Unit, i + 1))
                    } else {
                        Err(format!("update of g{i} at stage {s3} (stage already past)"))
                    }
                }
                other => Err(format!("assign to non-ref {other:?}")),
            }
        }
        CExpr::Fun(x, t_in, e_in, body) => {
            let mut env2 = env.clone();
            env2.push((x.clone(), t_in.clone()));
            let (t_out, e_out) = type_of(sig, &env2, *e_in, body)?;
            Ok((
                CTy::Arrow(Box::new(t_in.clone()), *e_in, Box::new(t_out), e_out),
                stage,
            ))
        }
        CExpr::App(f, a) => {
            let (tf, s1) = type_of(sig, env, stage, f)?;
            match tf {
                CTy::Arrow(t_in, e_in, t_out, e_out) => {
                    let (ta, s2) = type_of(sig, env, s1, a)?;
                    if ta != *t_in {
                        return Err(format!("argument type {ta:?} != parameter {t_in:?}"));
                    }
                    // APP side condition: ε₂ ≤ ε_in.
                    if s2 <= e_in {
                        Ok((*t_out, e_out))
                    } else {
                        Err(format!(
                            "application at stage {s2} but function requires entry ≤ {e_in}"
                        ))
                    }
                }
                other => Err(format!("application of non-function {other:?}")),
            }
        }
    }
}

/// Machine state `(G, n, e)`: global store, next-usable-global index, expr.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    pub store: Vec<i64>,
    pub next: usize,
    pub expr: Rc<CExpr>,
}

/// Capture-avoiding substitution `e[v/x]` — values in this calculus are
/// closed, so plain substitution suffices (we never substitute open terms).
fn subst(e: &CExpr, x: &str, v: &CExpr) -> CExpr {
    match e {
        CExpr::Var(y) if y == x => v.clone(),
        CExpr::Var(_) | CExpr::Unit | CExpr::Int(_) | CExpr::Global(_) => e.clone(),
        CExpr::Plus(a, b) => CExpr::Plus(Rc::new(subst(a, x, v)), Rc::new(subst(b, x, v))),
        CExpr::Let(y, a, b) => {
            let a2 = Rc::new(subst(a, x, v));
            if y == x {
                CExpr::Let(y.clone(), a2, b.clone())
            } else {
                CExpr::Let(y.clone(), a2, Rc::new(subst(b, x, v)))
            }
        }
        CExpr::Deref(r) => CExpr::Deref(Rc::new(subst(r, x, v))),
        CExpr::Assign(r, w) => CExpr::Assign(Rc::new(subst(r, x, v)), Rc::new(subst(w, x, v))),
        CExpr::Fun(y, t, s, b) => {
            if y == x {
                e.clone()
            } else {
                CExpr::Fun(y.clone(), t.clone(), *s, Rc::new(subst(b, x, v)))
            }
        }
        CExpr::App(a, b) => CExpr::App(Rc::new(subst(a, x, v)), Rc::new(subst(b, x, v))),
    }
}

/// One small step of the operational semantics (Figure 20). Returns `None`
/// when `expr` is a value; `Err` when stuck.
pub fn step(st: &State) -> Result<Option<State>, String> {
    let State { store, next, expr } = st;
    let rebuild = |e: CExpr| Rc::new(e);
    match expr.as_ref() {
        e if e.is_value() => Ok(None),
        CExpr::Var(x) => Err(format!("stuck: free variable {x}")),
        CExpr::Plus(a, b) => {
            if !a.is_value() {
                let sub = step(&State {
                    store: store.clone(),
                    next: *next,
                    expr: a.clone(),
                })?
                .ok_or("plus lhs: value but not stepped")?;
                return Ok(Some(State {
                    expr: rebuild(CExpr::Plus(sub.expr, b.clone())),
                    store: sub.store,
                    next: sub.next,
                }));
            }
            if !b.is_value() {
                let sub = step(&State {
                    store: store.clone(),
                    next: *next,
                    expr: b.clone(),
                })?
                .ok_or("plus rhs: value but not stepped")?;
                return Ok(Some(State {
                    expr: rebuild(CExpr::Plus(a.clone(), sub.expr)),
                    store: sub.store,
                    next: sub.next,
                }));
            }
            match (a.as_ref(), b.as_ref()) {
                (CExpr::Int(x), CExpr::Int(y)) => Ok(Some(State {
                    store: store.clone(),
                    next: *next,
                    expr: rebuild(CExpr::Int(x.wrapping_add(*y))),
                })),
                _ => Err("stuck: + on non-integers".into()),
            }
        }
        CExpr::Let(x, a, b) => {
            if !a.is_value() {
                let sub = step(&State {
                    store: store.clone(),
                    next: *next,
                    expr: a.clone(),
                })?
                .ok_or("let: value but not stepped")?;
                return Ok(Some(State {
                    expr: rebuild(CExpr::Let(x.clone(), sub.expr, b.clone())),
                    store: sub.store,
                    next: sub.next,
                }));
            }
            Ok(Some(State {
                store: store.clone(),
                next: *next,
                expr: rebuild(subst(b, x, a)),
            }))
        }
        CExpr::Deref(r) => {
            if !r.is_value() {
                let sub = step(&State {
                    store: store.clone(),
                    next: *next,
                    expr: r.clone(),
                })?
                .ok_or("deref: value but not stepped")?;
                return Ok(Some(State {
                    expr: rebuild(CExpr::Deref(sub.expr)),
                    store: sub.store,
                    next: sub.next,
                }));
            }
            match r.as_ref() {
                CExpr::Global(i) => {
                    // DEREF-2 side condition n ≤ i — this is exactly the
                    // "packet has not yet passed stage i" check.
                    if *next <= *i {
                        Ok(Some(State {
                            store: store.clone(),
                            next: *i + 1,
                            expr: rebuild(CExpr::Int(store[*i])),
                        }))
                    } else {
                        Err(format!("stuck: deref g{i} but stage counter is {next}"))
                    }
                }
                _ => Err("stuck: deref of non-global".into()),
            }
        }
        CExpr::Assign(r, v) => {
            // UPDATE-1: step the value first (matches the typing premises).
            if !v.is_value() {
                let sub = step(&State {
                    store: store.clone(),
                    next: *next,
                    expr: v.clone(),
                })?
                .ok_or("assign value: value but not stepped")?;
                return Ok(Some(State {
                    expr: rebuild(CExpr::Assign(r.clone(), sub.expr)),
                    store: sub.store,
                    next: sub.next,
                }));
            }
            if !r.is_value() {
                let sub = step(&State {
                    store: store.clone(),
                    next: *next,
                    expr: r.clone(),
                })?
                .ok_or("assign ref: value but not stepped")?;
                return Ok(Some(State {
                    expr: rebuild(CExpr::Assign(sub.expr, v.clone())),
                    store: sub.store,
                    next: sub.next,
                }));
            }
            match (r.as_ref(), v.as_ref()) {
                (CExpr::Global(i), CExpr::Int(n)) => {
                    if *next <= *i {
                        let mut store2 = store.clone();
                        store2[*i] = *n;
                        Ok(Some(State {
                            store: store2,
                            next: *i + 1,
                            expr: rebuild(CExpr::Unit),
                        }))
                    } else {
                        Err(format!("stuck: update g{i} but stage counter is {next}"))
                    }
                }
                _ => Err("stuck: malformed assignment".into()),
            }
        }
        CExpr::App(f, a) => {
            if !f.is_value() {
                let sub = step(&State {
                    store: store.clone(),
                    next: *next,
                    expr: f.clone(),
                })?
                .ok_or("app fn: value but not stepped")?;
                return Ok(Some(State {
                    expr: rebuild(CExpr::App(sub.expr, a.clone())),
                    store: sub.store,
                    next: sub.next,
                }));
            }
            if !a.is_value() {
                let sub = step(&State {
                    store: store.clone(),
                    next: *next,
                    expr: a.clone(),
                })?
                .ok_or("app arg: value but not stepped")?;
                return Ok(Some(State {
                    expr: rebuild(CExpr::App(f.clone(), sub.expr)),
                    store: sub.store,
                    next: sub.next,
                }));
            }
            match f.as_ref() {
                CExpr::Fun(x, _, _, body) => Ok(Some(State {
                    store: store.clone(),
                    next: *next,
                    expr: rebuild(subst(body, x, a)),
                })),
                _ => Err("stuck: application of non-function".into()),
            }
        }
        _ => unreachable!("values handled above"),
    }
}

/// Run to a value (or stuckness), with a fuel bound.
pub fn eval(sig: &GlobalSig, e: CExpr, fuel: usize) -> Result<State, String> {
    let mut st = State {
        store: vec![0; sig.len()],
        next: 0,
        expr: Rc::new(e),
    };
    for _ in 0..fuel {
        match step(&st)? {
            Some(next) => st = next,
            None => return Ok(st),
        }
    }
    Err("out of fuel".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sig2() -> GlobalSig {
        vec![BaseTy::Int, BaseTy::Int]
    }

    fn rc(e: CExpr) -> Rc<CExpr> {
        Rc::new(e)
    }

    #[test]
    fn in_order_access_typechecks_and_runs() {
        // let x = !g0 in g1 := x + 1
        let e = CExpr::Let(
            "x".into(),
            rc(CExpr::Deref(rc(CExpr::Global(0)))),
            rc(CExpr::Assign(
                rc(CExpr::Global(1)),
                rc(CExpr::Plus(rc(CExpr::Var("x".into())), rc(CExpr::Int(1)))),
            )),
        );
        let (t, eps) = type_of(&sig2(), &vec![], 0, &e).unwrap();
        assert_eq!(t, CTy::Unit);
        assert_eq!(eps, 2);
        let st = eval(&sig2(), e, 100).unwrap();
        assert_eq!(st.store, vec![0, 1]);
    }

    #[test]
    fn out_of_order_access_rejected() {
        // let x = !g1 in g0 := x  — the Figure 5 shape.
        let e = CExpr::Let(
            "x".into(),
            rc(CExpr::Deref(rc(CExpr::Global(1)))),
            rc(CExpr::Assign(
                rc(CExpr::Global(0)),
                rc(CExpr::Var("x".into())),
            )),
        );
        let err = type_of(&sig2(), &vec![], 0, &e).unwrap_err();
        assert!(err.contains("g0"), "{err}");
    }

    #[test]
    fn untyped_out_of_order_term_gets_stuck() {
        // The semantics itself refuses the disordered access — this is what
        // "stuck" means operationally.
        let e = CExpr::Let(
            "x".into(),
            rc(CExpr::Deref(rc(CExpr::Global(1)))),
            rc(CExpr::Assign(
                rc(CExpr::Global(0)),
                rc(CExpr::Var("x".into())),
            )),
        );
        let err = eval(&sig2(), e, 100).unwrap_err();
        assert!(err.contains("stuck"), "{err}");
    }

    #[test]
    fn function_entry_stage_enforced() {
        // f = fun (x : Int, 0) -> g0 := x ; after touching g1, applying f
        // must be rejected (APP side condition).
        let f = CExpr::Fun(
            "x".into(),
            CTy::Int,
            0,
            rc(CExpr::Assign(
                rc(CExpr::Global(0)),
                rc(CExpr::Var("x".into())),
            )),
        );
        let e = CExpr::Let(
            "y".into(),
            rc(CExpr::Deref(rc(CExpr::Global(1)))),
            rc(CExpr::App(rc(f), rc(CExpr::Var("y".into())))),
        );
        let err = type_of(&sig2(), &vec![], 0, &e).unwrap_err();
        assert!(err.contains("entry"), "{err}");
    }

    // ---- soundness, mechanically -----------------------------------------

    /// Generator for well-typed closed Int-typed expressions over `n`
    /// globals, tracking the stage exactly like the type system. Each
    /// generated term is well-typed by construction; the property test then
    /// verifies the soundness theorem by running it.
    fn arb_int_expr(sig: GlobalSig, stage: usize, depth: u32) -> impl Strategy<Value = CExpr> {
        let n = sig.len();
        if depth == 0 || stage >= n {
            return any::<i8>().prop_map(|v| CExpr::Int(v as i64)).boxed();
        }
        let leaf = any::<i8>().prop_map(|v| CExpr::Int(v as i64)).boxed();
        // A deref of any still-accessible global.
        let deref = (stage..n)
            .collect::<Vec<_>>()
            .pipe_sample()
            .prop_map(|i| CExpr::Deref(Rc::new(CExpr::Global(i))))
            .boxed();
        // let x = !g_i in x + <rest at stage i+1>
        let sig2 = sig.clone();
        let letd = (stage..n)
            .collect::<Vec<_>>()
            .pipe_sample()
            .prop_flat_map(move |i| {
                arb_int_expr(sig2.clone(), i + 1, depth - 1).prop_map(move |rest| {
                    CExpr::Let(
                        "x".into(),
                        Rc::new(CExpr::Deref(Rc::new(CExpr::Global(i)))),
                        Rc::new(CExpr::Plus(Rc::new(CExpr::Var("x".into())), Rc::new(rest))),
                    )
                })
            })
            .boxed();
        // g_i := v ; then continue — encoded as let _ = (g_i := v) in rest.
        let sig3 = sig.clone();
        let assign = ((stage..n).collect::<Vec<_>>().pipe_sample(), any::<i8>())
            .prop_flat_map(move |(i, v)| {
                arb_int_expr(sig3.clone(), i + 1, depth - 1).prop_map(move |rest| {
                    CExpr::Let(
                        "u".into(),
                        Rc::new(CExpr::Assign(
                            Rc::new(CExpr::Global(i)),
                            Rc::new(CExpr::Int(v as i64)),
                        )),
                        Rc::new(rest),
                    )
                })
            })
            .boxed();
        prop_oneof![leaf, deref, letd, assign].boxed()
    }

    /// Helper to sample uniformly from a non-empty Vec.
    trait PipeSample {
        fn pipe_sample(self) -> BoxedStrategy<usize>;
    }
    impl PipeSample for Vec<usize> {
        fn pipe_sample(self) -> BoxedStrategy<usize> {
            assert!(!self.is_empty());
            (0..self.len()).prop_map(move |i| self[i]).boxed()
        }
    }

    proptest! {
        /// The paper's soundness theorem, checked dynamically: every
        /// generated well-typed term (a) typechecks, and (b) evaluates to a
        /// value without getting stuck, with the store staying well-typed.
        #[test]
        fn soundness_well_typed_terms_never_stick(
            e in arb_int_expr(vec![BaseTy::Int; 4], 0, 3)
        ) {
            let sig = vec![BaseTy::Int; 4];
            let (t, _eps) = type_of(&sig, &vec![], 0, &e)
                .expect("generator must produce well-typed terms");
            prop_assert_eq!(t, CTy::Int);
            let st = eval(&sig, e, 10_000).expect("well-typed term got stuck");
            prop_assert!(st.expr.is_value());
        }

        /// Preservation, step by step: after each reduction the residual
        /// term still typechecks at the machine's stage counter, with the
        /// same result type (the theorem's ε′₁ is exactly `next`).
        #[test]
        fn preservation_at_every_step(
            e in arb_int_expr(vec![BaseTy::Int; 3], 0, 3)
        ) {
            let sig = vec![BaseTy::Int; 3];
            type_of(&sig, &vec![], 0, &e).expect("well-typed by construction");
            let mut st = State { store: vec![0; 3], next: 0, expr: Rc::new(e) };
            for _ in 0..10_000 {
                match step(&st).expect("progress violated") {
                    None => break,
                    Some(next_st) => {
                        let (t2, _) = type_of(&sig, &vec![], next_st.next, &next_st.expr)
                            .expect("preservation violated");
                        prop_assert_eq!(t2, CTy::Int);
                        st = next_st;
                    }
                }
            }
        }
    }
}
