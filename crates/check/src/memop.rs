//! The memop validator (§4.2 and Appendix C of the paper).
//!
//! A *memop* is a two-argument function that a single stateful ALU of a PISA
//! switch can evaluate in one shot: read one SRAM word, combine it with one
//! packet-local operand, and write back and/or return the result. Lucid
//! guarantees — *syntactically, before any lowering* — that every declared
//! memop fits, so that `Array` method calls can never fail deep inside a
//! target backend.
//!
//! The rules, verbatim from the paper:
//!
//! 1. the body is either a single `return` statement, or an `if` statement
//!    containing one `return` statement in each branch;
//! 2. each variable is used at most once per expression; and
//! 3. only ALU-supported operators are used.
//!
//! Appendix C discusses operations the Tofino can implement that the base
//! memop syntax rejects. This implementation enforces the base rules (no
//! reads of more than one packet-local variable, no complex arithmetic)
//! and additionally implements the appendix's proposed **extension**: a
//! compound condition (`&&`/`||` of two comparisons) is accepted as a
//! *complex* memop, flagged via [`MemopIr::is_complex`], and the type
//! checker bars complex memops from `Array.update` — where two memops
//! must share one sALU instruction — while allowing them in
//! `Array.get`/`Array.set`.
//!
//! Every rejection carries the span of the offending expression so the
//! programmer sees *exactly* which construct exceeds one sALU.

use crate::symbols::ProgramInfo;
use lucid_frontend::ast::*;
use lucid_frontend::diag::{Diagnostic, Diagnostics};

/// The validated shape of a memop, consumed by the interpreter (to evaluate
/// it) and by the backend (to emit a `RegisterAction`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemopIr {
    pub name: String,
    /// Name of the first parameter — bound to the stored SRAM word.
    pub mem_param: String,
    /// Name of the second parameter — bound to the packet-local operand.
    pub local_param: String,
    pub body: MemopBody,
}

impl MemopIr {
    /// True for extended (Appendix C) memops that consume a whole sALU's
    /// predicate capacity and therefore cannot share an `Array.update`.
    pub fn is_complex(&self) -> bool {
        matches!(self.body, MemopBody::CondCompound { .. })
    }
}

/// Body of a validated memop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemopBody {
    /// `return <cell>;`
    Return(MemopCell),
    /// `if (<a> <cmp> <b>) { return <t>; } else { return <f>; }`
    Cond {
        lhs: MemopAtom,
        cmp: BinOp,
        rhs: MemopAtom,
        then_val: MemopCell,
        else_val: MemopCell,
    },
    /// Extended memop (Appendix C): a *compound* condition of two simple
    /// comparisons joined by `&&`/`||`. A single sALU can evaluate this,
    /// but only when it is the instruction's sole memop — so memops of
    /// this shape are restricted to `Array.get`/`Array.set` positions and
    /// rejected in `Array.update` (enforced by the type checker).
    CondCompound {
        and: bool,
        a: (MemopAtom, BinOp, MemopAtom),
        b: (MemopAtom, BinOp, MemopAtom),
        then_val: MemopCell,
        else_val: MemopCell,
    },
}

/// A value expression inside a memop: one atom or one ALU op over two atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemopCell {
    Atom(MemopAtom),
    Binop {
        op: BinOp,
        lhs: MemopAtom,
        rhs: MemopAtom,
    },
}

/// A leaf operand of a memop expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemopAtom {
    /// The stored (SRAM) parameter.
    Mem,
    /// The packet-local parameter.
    Local,
    /// A literal or `const` value.
    Const(u64),
}

/// Intermediate condition shape during validation.
enum MemopCondition {
    Simple(MemopAtom, BinOp, MemopAtom),
    Compound {
        and: bool,
        a: (MemopAtom, BinOp, MemopAtom),
        b: (MemopAtom, BinOp, MemopAtom),
    },
}

/// Validate every memop in `program`, returning their IR forms keyed by
/// name. All violations are collected (not fail-fast) so a programmer sees
/// each offending construct in one compile.
pub fn validate_memops(program: &Program, info: &ProgramInfo) -> Result<Vec<MemopIr>, Diagnostics> {
    let mut out = Vec::new();
    let mut diags = Diagnostics::new();
    for decl in &program.decls {
        if let DeclKind::Memop { name, params, body } = &decl.kind {
            match validate_one(name, params, body, info) {
                Ok(ir) => out.push(ir),
                Err(mut ds) => diags.items.append(&mut ds.items),
            }
        }
    }
    if diags.has_errors() {
        Err(diags.or_code_all("E0300"))
    } else {
        Ok(out)
    }
}

fn validate_one(
    name: &Ident,
    params: &[Param],
    body: &Block,
    info: &ProgramInfo,
) -> Result<MemopIr, Diagnostics> {
    let mut diags = Diagnostics::new();

    if params.len() != 2 {
        diags.push(
            Diagnostic::error(
                format!(
                    "memop `{name}` must take exactly two arguments (the stored value and one \
                     local operand); it takes {}",
                    params.len()
                ),
                name.span,
            )
            .with_help(
                "a stateful ALU reads one SRAM word and one packet operand per packet — \
                 more inputs cannot fit in a single sALU (paper §4.2, Appendix C)",
            ),
        );
        return Err(diags);
    }
    for p in params {
        if p.ty.int_width().is_none() {
            diags.push(Diagnostic::error(
                format!(
                    "memop parameter `{}` must be an integer, not {}",
                    p.name, p.ty
                ),
                p.span,
            ));
        }
    }
    if diags.has_errors() {
        return Err(diags);
    }

    let mem = params[0].name.name.clone();
    let local = params[1].name.name.clone();
    let cx = Cx {
        mem: &mem,
        local: &local,
        info,
    };

    let ir_body = match &body.stmts[..] {
        [Stmt {
            kind: StmtKind::Return(Some(e)),
            ..
        }] => cx.cell(e, &mut diags).map(MemopBody::Return),
        [Stmt {
            kind:
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk: Some(else_blk),
                },
            ..
        }] => {
            let ret_of = |blk: &Block, diags: &mut Diagnostics| -> Option<Expr> {
                match &blk.stmts[..] {
                    [Stmt {
                        kind: StmtKind::Return(Some(e)),
                        ..
                    }] => Some(e.clone()),
                    _ => {
                        diags.push(
                            Diagnostic::error(
                                "each branch of a memop's `if` must be exactly one `return`",
                                blk.span,
                            )
                            .with_help(
                                "a stateful ALU evaluates one predicated expression per branch; \
                                 extra statements cannot execute in the same sALU pass",
                            ),
                        );
                        None
                    }
                }
            };
            let cond_ir = cx.condition(cond, &mut diags);
            let t = ret_of(then_blk, &mut diags).and_then(|e| cx.cell(&e, &mut diags));
            let f = ret_of(else_blk, &mut diags).and_then(|e| cx.cell(&e, &mut diags));
            match (cond_ir, t, f) {
                (Some(MemopCondition::Simple(lhs, cmp, rhs)), Some(then_val), Some(else_val)) => {
                    Some(MemopBody::Cond {
                        lhs,
                        cmp,
                        rhs,
                        then_val,
                        else_val,
                    })
                }
                (Some(MemopCondition::Compound { and, a, b }), Some(then_val), Some(else_val)) => {
                    Some(MemopBody::CondCompound {
                        and,
                        a,
                        b,
                        then_val,
                        else_val,
                    })
                }
                _ => None,
            }
        }
        _ => {
            diags.push(
                Diagnostic::error(
                    format!(
                        "memop `{name}` body must be a single `return`, or one `if` with a \
                         `return` in each branch"
                    ),
                    body.span,
                )
                .with_help("this is the complete set of shapes a single stateful ALU supports"),
            );
            None
        }
    };

    match ir_body {
        Some(b) if !diags.has_errors() => Ok(MemopIr {
            name: name.name.clone(),
            mem_param: mem,
            local_param: local,
            body: b,
        }),
        _ => Err(diags),
    }
}

struct Cx<'a> {
    mem: &'a str,
    local: &'a str,
    info: &'a ProgramInfo,
}

impl Cx<'_> {
    /// Parse an expression as a memop *cell* (rule: at most one ALU op, each
    /// variable used at most once per expression).
    fn cell(&self, e: &Expr, diags: &mut Diagnostics) -> Option<MemopCell> {
        match &e.kind {
            ExprKind::Binary { op, lhs, rhs } => {
                if !op.salu_supported() {
                    diags.push(
                        Diagnostic::error(
                            format!(
                                "operator `{op}` is not supported inside a memop; a stateful \
                                 ALU provides only `+`, `-`, `&`, `|`, `^`"
                            ),
                            e.span,
                        )
                        .with_help(
                            "compute the complex part into a local variable *before* the \
                             Array call, then pass it as the memop's second argument",
                        ),
                    );
                    return None;
                }
                let l = self.atom(lhs, diags)?;
                let r = self.atom(rhs, diags)?;
                self.check_single_use(&[l, r], e, diags)?;
                Some(MemopCell::Binop {
                    op: *op,
                    lhs: l,
                    rhs: r,
                })
            }
            _ => Some(MemopCell::Atom(self.atom(e, diags)?)),
        }
    }

    /// Parse a memop *condition*: one comparison, or (Appendix C) one
    /// `&&`/`||` of two comparisons.
    fn condition(&self, e: &Expr, diags: &mut Diagnostics) -> Option<MemopCondition> {
        match &e.kind {
            ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
                let l = self.atom(lhs, diags)?;
                let r = self.atom(rhs, diags)?;
                self.check_single_use(&[l, r], e, diags)?;
                Some(MemopCondition::Simple(l, *op, r))
            }
            ExprKind::Binary { op, lhs, rhs } if op.is_logical() => {
                // Appendix C extension: one `&&`/`||` of two simple
                // comparisons. Per-comparison single-use still applies, but
                // the memop is flagged complex and barred from
                // Array.update by the type checker.
                let a = self.simple_cmp(lhs, diags)?;
                let b = self.simple_cmp(rhs, diags)?;
                Some(MemopCondition::Compound {
                    and: *op == BinOp::And,
                    a,
                    b,
                })
            }
            _ => {
                diags.push(Diagnostic::error(
                    "memop condition must be a single comparison between two operands",
                    e.span,
                ));
                None
            }
        }
    }

    /// One simple comparison inside a compound condition.
    fn simple_cmp(
        &self,
        e: &Expr,
        diags: &mut Diagnostics,
    ) -> Option<(MemopAtom, BinOp, MemopAtom)> {
        match &e.kind {
            ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
                let l = self.atom(lhs, diags)?;
                let r = self.atom(rhs, diags)?;
                self.check_single_use(&[l, r], e, diags)?;
                Some((l, *op, r))
            }
            _ => {
                diags.push(Diagnostic::error(
                    "each side of a compound memop condition must be a simple comparison",
                    e.span,
                ));
                None
            }
        }
    }

    /// Parse a leaf operand: a parameter or a constant.
    fn atom(&self, e: &Expr, diags: &mut Diagnostics) -> Option<MemopAtom> {
        match &e.kind {
            ExprKind::Int { value, .. } => Some(MemopAtom::Const(*value)),
            ExprKind::Bool(b) => Some(MemopAtom::Const(*b as u64)),
            ExprKind::Var(id) if id.name == self.mem => Some(MemopAtom::Mem),
            ExprKind::Var(id) if id.name == self.local => Some(MemopAtom::Local),
            ExprKind::Var(id) => {
                if let Some(c) = self.info.consts.get(&id.name) {
                    Some(MemopAtom::Const(c.value))
                } else {
                    diags.push(
                        Diagnostic::error(
                            format!(
                                "`{}` is not a memop parameter or a `const`; a memop can read \
                                 only its two arguments and compile-time constants",
                                id.name
                            ),
                            id.span,
                        )
                        .with_help(
                            "to use another packet-local value, pass it as the memop's \
                             second argument at the Array call site",
                        ),
                    );
                    None
                }
            }
            ExprKind::Binary { .. } => {
                diags.push(
                    Diagnostic::error(
                        "nested arithmetic exceeds one stateful ALU; a memop expression may \
                         contain at most one operator",
                        e.span,
                    )
                    .with_help("hoist part of the computation out of the memop"),
                );
                None
            }
            _ => {
                diags.push(Diagnostic::error(
                    "unsupported expression inside a memop",
                    e.span,
                ));
                None
            }
        }
    }

    /// Rule 2: each variable used at most once per expression.
    fn check_single_use(
        &self,
        atoms: &[MemopAtom],
        e: &Expr,
        diags: &mut Diagnostics,
    ) -> Option<()> {
        let mems = atoms.iter().filter(|a| matches!(a, MemopAtom::Mem)).count();
        let locals = atoms
            .iter()
            .filter(|a| matches!(a, MemopAtom::Local))
            .count();
        if mems > 1 || locals > 1 {
            let which = if mems > 1 { self.mem } else { self.local };
            diags.push(
                Diagnostic::error(
                    format!("variable `{which}` is used more than once in this expression"),
                    e.span,
                )
                .with_help(
                    "each sALU operand port can be wired to a value once per expression \
                     (paper §4.2, rule 2)",
                ),
            );
            return None;
        }
        Some(())
    }
}

/// Evaluate a validated memop on concrete values — the reference semantics
/// shared by the interpreter and by tests of the backend's RegisterAction
/// translation. `width` masks all intermediate results, mirroring the
/// fixed-width ALU datapath.
pub fn eval_memop(m: &MemopIr, mem: u64, local: u64, width: u32) -> u64 {
    let atom = |a: MemopAtom| -> u64 {
        match a {
            MemopAtom::Mem => mem,
            MemopAtom::Local => local,
            MemopAtom::Const(c) => crate::symbols::mask(c, width),
        }
    };
    let cell = |c: &MemopCell| -> u64 {
        match c {
            MemopCell::Atom(a) => atom(*a),
            MemopCell::Binop { op, lhs, rhs } => {
                let a = atom(*lhs);
                let b = atom(*rhs);
                let r = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    _ => unreachable!("validator admits only sALU ops"),
                };
                crate::symbols::mask(r, width)
            }
        }
    };
    let cmp_eval = |l: MemopAtom, cmp: BinOp, r: MemopAtom| -> bool {
        let a = atom(l);
        let b = atom(r);
        match cmp {
            BinOp::Eq => a == b,
            BinOp::Neq => a != b,
            BinOp::Lt => a < b,
            BinOp::Gt => a > b,
            BinOp::Le => a <= b,
            BinOp::Ge => a >= b,
            _ => unreachable!("validator admits only comparisons"),
        }
    };
    match &m.body {
        MemopBody::Return(c) => cell(c),
        MemopBody::Cond {
            lhs,
            cmp,
            rhs,
            then_val,
            else_val,
        } => {
            if cmp_eval(*lhs, *cmp, *rhs) {
                cell(then_val)
            } else {
                cell(else_val)
            }
        }
        MemopBody::CondCompound {
            and,
            a,
            b,
            then_val,
            else_val,
        } => {
            let ra = cmp_eval(a.0, a.1, a.2);
            let rb = cmp_eval(b.0, b.1, b.2);
            let taken = if *and { ra && rb } else { ra || rb };
            if taken {
                cell(then_val)
            } else {
                cell(else_val)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucid_frontend::parse_program;

    fn validate(src: &str) -> Result<Vec<MemopIr>, Diagnostics> {
        let p = parse_program(src).unwrap();
        let info = ProgramInfo::build(&p).unwrap();
        validate_memops(&p, &info)
    }

    #[test]
    fn paper_incr_memop_is_valid() {
        let irs = validate("memop incr(int stored, int added) { return stored + added; }").unwrap();
        assert_eq!(irs.len(), 1);
        assert_eq!(eval_memop(&irs[0], 10, 5, 32), 15);
    }

    #[test]
    fn conditional_memop_is_valid() {
        let irs = validate(
            "memop newer(int stored, int t) { if (stored < t) { return t; } else { return stored; } }",
        )
        .unwrap();
        assert_eq!(eval_memop(&irs[0], 3, 9, 32), 9);
        assert_eq!(eval_memop(&irs[0], 12, 9, 32), 12);
    }

    #[test]
    fn paper_register_action_example_rejected() {
        // The P4 RegisterAction from §4 that is "too complex for the Tofino":
        // both branches compute, and one reads two locals. In memop form the
        // closest encoding uses nested arithmetic; it must be rejected.
        let err = validate(
            "memop bad(int memCell, int y) {
                if (memCell > y) { return memCell + y; } else { return y + y; }
             }",
        )
        .unwrap_err();
        assert!(
            err.items
                .iter()
                .any(|d| d.message.contains("more than once")),
            "{err}"
        );
    }

    #[test]
    fn compound_condition_accepted_as_complex_memop() {
        // Appendix C extension: the compound-condition memop that the base
        // design rejects is representable as a *complex* memop, flagged so
        // the checker can keep it out of Array.update.
        let irs = validate(
            "memop cc(int m, int y) {
                if (m == 1 || m == 2) { return m; } else { return y; }
             }",
        )
        .unwrap();
        assert!(irs[0].is_complex());
        assert_eq!(eval_memop(&irs[0], 2, 9, 32), 2);
        assert_eq!(eval_memop(&irs[0], 3, 9, 32), 9);
    }

    #[test]
    fn compound_and_condition_evaluates() {
        let irs = validate(
            "memop inband(int m, int y) {
                if (m >= 10 && m <= 20) { return y; } else { return m; }
             }",
        )
        .unwrap();
        assert_eq!(eval_memop(&irs[0], 15, 1, 32), 1);
        assert_eq!(eval_memop(&irs[0], 25, 1, 32), 25);
    }

    #[test]
    fn nested_compound_condition_still_rejected() {
        let err = validate(
            "memop cc(int m, int y) {
                if ((m == 1 || m == 2) || m == 3) { return m; } else { return y; }
             }",
        )
        .unwrap_err();
        assert!(
            err.items[0].message.contains("simple comparison"),
            "{}",
            err.items[0]
        );
    }

    #[test]
    fn appendix_c_multiply_rejected() {
        let err = validate(
            "const int N = 10;
             memop multiply(int memval, int x) { return (N * memval) + x; }",
        )
        .unwrap_err();
        assert!(
            err.items
                .iter()
                .any(|d| d.message.contains("nested") || d.message.contains("not supported")),
            "{err}"
        );
    }

    #[test]
    fn three_params_rejected() {
        let err = validate(
            "memop two(int memval, int y, int z) {
                if (memval == 1) { return y; } else { return z; }
             }",
        )
        .unwrap_err();
        assert!(
            err.items[0].message.contains("exactly two arguments"),
            "{}",
            err.items[0]
        );
    }

    #[test]
    fn foreign_variable_rejected() {
        let err = validate("memop f(int m, int y) { return m + other; }").unwrap_err();
        assert!(err.items[0].message.contains("other"), "{}", err.items[0]);
    }

    #[test]
    fn const_operands_allowed() {
        let irs =
            validate("const int LIMIT = 100; memop capped(int m, int y) { if (m < LIMIT) { return y; } else { return m; } }")
                .unwrap();
        assert_eq!(eval_memop(&irs[0], 50, 7, 32), 7);
        assert_eq!(eval_memop(&irs[0], 150, 7, 32), 150);
    }

    #[test]
    fn extra_statements_in_branch_rejected() {
        let err = validate(
            "memop f(int m, int y) {
                if (m == 0) { int t = y; return t; } else { return m; }
             }",
        )
        .unwrap_err();
        assert!(
            err.items[0].message.contains("exactly one `return`"),
            "{}",
            err.items[0]
        );
    }

    #[test]
    fn multiple_memops_collect_all_errors() {
        let err = validate(
            "memop a(int m, int y) { return m * y; }
             memop b(int m, int y) { return m + q; }",
        )
        .unwrap_err();
        assert!(
            err.items.len() >= 2,
            "expected both memops to report: {err}"
        );
    }

    #[test]
    fn eval_masks_to_width() {
        let irs = validate("memop inc(int m, int y) { return m + y; }").unwrap();
        assert_eq!(eval_memop(&irs[0], 0xff, 1, 8), 0);
    }

    #[test]
    fn subtraction_wraps() {
        let irs = validate("memop dec(int m, int y) { return m - y; }").unwrap();
        assert_eq!(eval_memop(&irs[0], 0, 1, 32), u32::MAX as u64);
    }
}
