//! The Lucid lint pass: post-typecheck analyses over the checked AST
//! that flag *suspicious but legal* programs. The type-and-effect
//! system answers "can this run on the pipeline at all"; lints answer
//! "did you mean to write this" — every finding here type-checks, so
//! all diagnostics are warning-severity with stable `W05xx` codes
//! (`W00xx` stays with the checker's own dead-code warnings).
//!
//! | code    | finding |
//! |---------|---------|
//! | `W0501` | local variable never read |
//! | `W0502` | handler/function parameter never read |
//! | `W0503` | global array never accessed by any handler or function |
//! | `W0504` | statement follows an `if` whose branches all end the event flow (`generate`/`return`) |
//! | `W0505` | condition always evaluates to the same value |
//! | `W0506` | handler neither reads nor writes any global |
//! | `W0507` | one handler accesses the same global at several sites (serialized into extra stages by layout) |
//!
//! Lints run on demand (`lucidc check --lint`, `lucidc compile --lint`,
//! `Build::lint`); `--deny-lints` promotes them to errors. Output for
//! the bundled Figure-9 apps is pinned by golden files
//! (`tests/golden/<app>.lints.txt`).

use crate::symbols::ConstInfo;
use crate::typecheck::CheckedProgram;
use lucid_frontend::ast::*;
use lucid_frontend::diag::{Diagnostic, Diagnostics};
use std::collections::{HashMap, HashSet};

/// The stable lint codes (`W05xx` range; see the code-registry test).
pub mod codes {
    /// Local variable never read.
    pub const UNUSED_LOCAL: &str = "W0501";
    /// Parameter never read in its handler/function body.
    pub const UNUSED_PARAM: &str = "W0502";
    /// Global array no handler or function ever touches.
    pub const UNUSED_GLOBAL: &str = "W0503";
    /// Statement after an `if` whose branches all `generate`/`return`.
    pub const AFTER_GENERATE: &str = "W0504";
    /// Constant condition.
    pub const CONST_CONDITION: &str = "W0505";
    /// Handler that touches no global state.
    pub const STATELESS_HANDLER: &str = "W0506";
    /// Several access sites on one global in one handler.
    pub const DUPLICATE_ACCESS: &str = "W0507";
}

/// Run every lint over a checked program. Diagnostics come out in
/// declaration order, so output is deterministic and golden-pinnable.
pub fn lint(prog: &CheckedProgram) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let global_reads = all_reads(prog);
    let fun_touches = fun_global_touches(prog);

    for decl in &prog.program.decls {
        match &decl.kind {
            DeclKind::GlobalArray { name, .. } if !global_reads.contains(name.name.as_str()) => {
                diags.push(
                    Diagnostic::warning(
                        format!("global array `{}` is never accessed", name.name),
                        name.span,
                    )
                    .with_code(codes::UNUSED_GLOBAL)
                    .with_help("every global occupies pipeline stages whether or not it is used"),
                );
            }
            DeclKind::Handler { name, params, body } => {
                lint_body(&mut diags, prog, "handler", name, params, body);
                lint_handler_state(&mut diags, prog, &fun_touches, name, body);
            }
            DeclKind::Fun {
                name, params, body, ..
            } => {
                lint_body(&mut diags, prog, "function", name, params, body);
            }
            _ => {}
        }
    }
    diags
}

/// The per-body lints: unused locals/params, constant conditions, and
/// statements following generate-terminated branches.
fn lint_body(
    diags: &mut Diagnostics,
    prog: &CheckedProgram,
    what: &str,
    name: &Ident,
    params: &[Param],
    body: &Block,
) {
    let mut reads = HashSet::new();
    block_reads(body, &mut reads);

    for p in params {
        if !reads.contains(p.name.name.as_str()) {
            diags.push(
                Diagnostic::warning(
                    format!(
                        "parameter `{}` of {what} `{}` is never read",
                        p.name.name, name.name
                    ),
                    p.name.span,
                )
                .with_code(codes::UNUSED_PARAM),
            );
        }
    }
    lint_block(diags, prog, &reads, body);
}

/// Walk one block: locals, conditions, and post-`generate` statements;
/// recurses into nested blocks.
fn lint_block(
    diags: &mut Diagnostics,
    prog: &CheckedProgram,
    reads: &HashSet<&str>,
    block: &Block,
) {
    for (i, stmt) in block.stmts.iter().enumerate() {
        match &stmt.kind {
            StmtKind::Local { name, .. } if !reads.contains(name.name.as_str()) => {
                diags.push(
                    Diagnostic::warning(format!("local `{}` is never read", name.name), name.span)
                        .with_code(codes::UNUSED_LOCAL),
                );
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                if let Some(v) = fold_bool(cond, &prog.info.consts) {
                    diags.push(
                        Diagnostic::warning(
                            format!("condition always evaluates to `{v}`"),
                            cond.span,
                        )
                        .with_code(codes::CONST_CONDITION),
                    );
                }
                // A branch pair that always ends the event flow —
                // both terminate, at least one via `generate` (plain
                // double-return is the checker's W0002) — makes any
                // following statement a likely mistake: the handler's
                // continuation event was already emitted on every path.
                if stmt_term(&stmt.kind) == Term::Generate {
                    if let Some(next) = block.stmts.get(i + 1) {
                        diags.push(
                            Diagnostic::warning(
                                "statement follows an `if` whose branches all end the \
                                 event flow with `generate`",
                                next.span,
                            )
                            .with_code(codes::AFTER_GENERATE)
                            .with_note("every path through this `if` already generated", stmt.span),
                        );
                    }
                }
                lint_block(diags, prog, reads, then_blk);
                if let Some(e) = else_blk {
                    lint_block(diags, prog, reads, e);
                }
            }
            _ => {}
        }
    }
}

/// How a statement leaves the surrounding event flow.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Term {
    /// Falls through to the next statement.
    No,
    /// Ends via `return` on every path.
    Return,
    /// Ends on every path, at least one of them via `generate`.
    Generate,
}

fn stmt_term(kind: &StmtKind) -> Term {
    match kind {
        StmtKind::Return(_) => Term::Return,
        StmtKind::Generate(_) | StmtKind::MGenerate(_) => Term::Generate,
        StmtKind::If {
            then_blk,
            else_blk: Some(else_blk),
            ..
        } => match (block_term(then_blk), block_term(else_blk)) {
            (Term::No, _) | (_, Term::No) => Term::No,
            (Term::Return, Term::Return) => Term::Return,
            _ => Term::Generate,
        },
        _ => Term::No,
    }
}

fn block_term(block: &Block) -> Term {
    block.stmts.last().map_or(Term::No, |s| stmt_term(&s.kind))
}

/// `W0506`: a handler that touches no global — directly or through any
/// function it calls — does pure per-packet compute the switch could do
/// without Lucid's state model at all.
fn lint_handler_state(
    diags: &mut Diagnostics,
    prog: &CheckedProgram,
    fun_touches: &HashMap<&str, bool>,
    name: &Ident,
    body: &Block,
) {
    if prog.info.globals.is_empty() {
        return;
    }
    if !touches_global(body, fun_touches) {
        diags.push(
            Diagnostic::warning(
                format!(
                    "handler `{}` neither reads nor writes any global",
                    name.name
                ),
                name.span,
            )
            .with_code(codes::STATELESS_HANDLER),
        );
    }
    lint_duplicate_accesses(diags, prog, name, body);
}

/// `W0507`: several syntactic access sites on one global within one
/// handler. The calculus only admits them on mutually exclusive paths,
/// and the layout model still serializes each site into its own stage
/// — usually a single hoisted access was intended.
fn lint_duplicate_accesses(
    diags: &mut Diagnostics,
    prog: &CheckedProgram,
    name: &Ident,
    body: &Block,
) {
    let mut sites: Vec<(&str, lucid_frontend::span::Span)> = Vec::new();
    collect_access_sites(body, prog, &mut sites);
    let mut first: HashMap<&str, lucid_frontend::span::Span> = HashMap::new();
    let mut warned: HashSet<&str> = HashSet::new();
    for (arr, span) in sites {
        match first.get(arr) {
            None => {
                first.insert(arr, span);
            }
            Some(first_span) if !warned.contains(arr) => {
                warned.insert(arr);
                diags.push(
                    Diagnostic::warning(
                        format!(
                            "handler `{}` accesses global `{arr}` at more than one site",
                            name.name
                        ),
                        span,
                    )
                    .with_code(codes::DUPLICATE_ACCESS)
                    .with_note("first access site", *first_span)
                    .with_help(
                        "the layout model serializes each syntactic access into its own \
                         stage; hoisting one shared access saves pipeline stages",
                    ),
                );
            }
            Some(_) => {}
        }
    }
}

fn collect_access_sites<'a>(
    block: &'a Block,
    prog: &CheckedProgram,
    out: &mut Vec<(&'a str, lucid_frontend::span::Span)>,
) {
    for stmt in &block.stmts {
        stmt_exprs(stmt, &mut |e| {
            if let ExprKind::BuiltinCall { builtin, args, .. } = &e.kind {
                if builtin.is_array_op() {
                    if let Some(Expr {
                        kind: ExprKind::Var(id),
                        ..
                    }) = args.first()
                    {
                        if prog.info.globals_by_name.contains_key(&id.name) {
                            out.push((id.name.as_str(), e.span));
                        }
                    }
                }
            }
        });
        if let StmtKind::If {
            then_blk, else_blk, ..
        } = &stmt.kind
        {
            collect_access_sites(then_blk, prog, out);
            if let Some(e) = else_blk {
                collect_access_sites(e, prog, out);
            }
        }
    }
}

/// Does this block touch any global, directly or through a called
/// function?
fn touches_global(block: &Block, fun_touches: &HashMap<&str, bool>) -> bool {
    let mut found = false;
    for stmt in &block.stmts {
        stmt_exprs(stmt, &mut |e| match &e.kind {
            ExprKind::BuiltinCall { builtin, .. } if builtin.is_array_op() => found = true,
            ExprKind::Call { callee, .. } => {
                found |= fun_touches
                    .get(callee.name.as_str())
                    .copied()
                    .unwrap_or(false);
            }
            _ => {}
        });
        if let StmtKind::If {
            then_blk, else_blk, ..
        } = &stmt.kind
        {
            found |= touches_global(then_blk, fun_touches);
            if let Some(e) = else_blk {
                found |= touches_global(e, fun_touches);
            }
        }
    }
    found
}

/// Per-function "touches a global" table, closed transitively. Lucid
/// call graphs are finite and non-recursive, so iterating to a fixpoint
/// terminates quickly.
fn fun_global_touches(prog: &CheckedProgram) -> HashMap<&str, bool> {
    let mut touches: HashMap<&str, bool> = HashMap::new();
    loop {
        let mut changed = false;
        for decl in &prog.program.decls {
            if let DeclKind::Fun { name, body, .. } = &decl.kind {
                let now = touches_global(body, &touches);
                let entry = touches.entry(name.name.as_str()).or_insert(false);
                if now && !*entry {
                    *entry = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return touches;
        }
    }
}

// ------------------------------------------------------------ read sets

/// Every identifier the whole program reads in expression position —
/// what `W0503` checks globals against.
fn all_reads(prog: &CheckedProgram) -> HashSet<&str> {
    let mut reads = HashSet::new();
    for decl in &prog.program.decls {
        match &decl.kind {
            DeclKind::Handler { body, .. }
            | DeclKind::Fun { body, .. }
            | DeclKind::Memop { body, .. } => block_reads(body, &mut reads),
            _ => {}
        }
    }
    reads
}

/// Every identifier a block reads (`Var` in any expression). Assignment
/// *targets* deliberately do not count: a local that is only ever
/// written is still unused.
fn block_reads<'a>(block: &'a Block, reads: &mut HashSet<&'a str>) {
    for stmt in &block.stmts {
        stmt_exprs(stmt, &mut |e| {
            if let ExprKind::Var(id) = &e.kind {
                reads.insert(id.name.as_str());
            }
        });
        if let StmtKind::If {
            then_blk, else_blk, ..
        } = &stmt.kind
        {
            block_reads(then_blk, reads);
            if let Some(e) = else_blk {
                block_reads(e, reads);
            }
        }
    }
}

/// Invoke `f` on every expression node a statement owns directly
/// (nested blocks are the caller's job — lints differ on whether they
/// recurse).
fn stmt_exprs<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &stmt.kind {
        StmtKind::Local { init, .. } => walk_expr(init, f),
        StmtKind::Assign { value, .. } => walk_expr(value, f),
        StmtKind::If { cond, .. } => walk_expr(cond, f),
        StmtKind::Generate(e) | StmtKind::MGenerate(e) => walk_expr(e, f),
        StmtKind::Return(Some(e)) => walk_expr(e, f),
        StmtKind::Return(None) => {}
        StmtKind::Printf { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        StmtKind::Expr(e) => walk_expr(e, f),
    }
}

fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Int { .. } | ExprKind::Bool(_) | ExprKind::Var(_) => {}
        ExprKind::Unary { arg, .. } | ExprKind::Cast { arg, .. } => walk_expr(arg, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Call { args, .. }
        | ExprKind::BuiltinCall { args, .. }
        | ExprKind::Hash { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
    }
}

// ------------------------------------------------------ constant folding

/// A folded compile-time value.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CVal {
    Int(u64),
    Bool(bool),
}

/// Fold a condition to a constant boolean, if literals and declared
/// `const`s fully determine it. Deliberately conservative: arithmetic
/// and casts are skipped (width semantics belong to the evaluator),
/// only comparisons and boolean connectives fold.
fn fold_bool(e: &Expr, consts: &HashMap<String, ConstInfo>) -> Option<bool> {
    match fold(e, consts)? {
        CVal::Bool(b) => Some(b),
        CVal::Int(_) => None,
    }
}

fn fold(e: &Expr, consts: &HashMap<String, ConstInfo>) -> Option<CVal> {
    match &e.kind {
        ExprKind::Int { value, .. } => Some(CVal::Int(*value)),
        ExprKind::Bool(b) => Some(CVal::Bool(*b)),
        ExprKind::Var(id) => consts.get(&id.name).map(|c| CVal::Int(c.value)),
        ExprKind::Unary { op: UnOp::Not, arg } => match fold(arg, consts)? {
            CVal::Bool(b) => Some(CVal::Bool(!b)),
            CVal::Int(_) => None,
        },
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, b) = (fold(lhs, consts)?, fold(rhs, consts)?);
            match (op, a, b) {
                (BinOp::And, CVal::Bool(x), CVal::Bool(y)) => Some(CVal::Bool(x && y)),
                (BinOp::Or, CVal::Bool(x), CVal::Bool(y)) => Some(CVal::Bool(x || y)),
                (BinOp::Eq, CVal::Bool(x), CVal::Bool(y)) => Some(CVal::Bool(x == y)),
                (BinOp::Neq, CVal::Bool(x), CVal::Bool(y)) => Some(CVal::Bool(x != y)),
                (BinOp::Eq, CVal::Int(x), CVal::Int(y)) => Some(CVal::Bool(x == y)),
                (BinOp::Neq, CVal::Int(x), CVal::Int(y)) => Some(CVal::Bool(x != y)),
                (BinOp::Lt, CVal::Int(x), CVal::Int(y)) => Some(CVal::Bool(x < y)),
                (BinOp::Gt, CVal::Int(x), CVal::Int(y)) => Some(CVal::Bool(x > y)),
                (BinOp::Le, CVal::Int(x), CVal::Int(y)) => Some(CVal::Bool(x <= y)),
                (BinOp::Ge, CVal::Int(x), CVal::Int(y)) => Some(CVal::Bool(x >= y)),
                _ => None,
            }
        }
        _ => None,
    }
}
