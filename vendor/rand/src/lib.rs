//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the surface this workspace uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::gen_range` over integer
//! and float ranges, and the `distributions::Distribution` trait. The
//! generator is xoshiro256++ seeded via splitmix64 — high-quality enough
//! that the statistical assertions in the simulation tests hold.

use std::ops::Range;

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, usable through `&mut dyn`-style unsized
/// references (`R: Rng + ?Sized`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range values can be sampled from.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty sample range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sample range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub mod distributions {
    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: u32 = rng.gen_range(1u32..=32);
            assert!((1..=32).contains(&i));
        }
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
