//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A plain timing loop behind criterion's API shape: each benchmark runs
//! `sample_size` timed iterations after a short warm-up and prints the mean
//! wall time per iteration (plus element throughput when configured). No
//! statistical analysis, outlier detection, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    #[allow(dead_code)]
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self, &mut f);
        print_report(name, &report, None);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.criterion, &mut f);
        print_report(
            &format!("{}/{}", self.name, id),
            &report,
            self.throughput.as_ref(),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.criterion, &mut |b: &mut Bencher| f(b, input));
        print_report(
            &format!("{}/{}", self.name, id),
            &report,
            self.throughput.as_ref(),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Units processed per iteration, for throughput reporting.
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Handed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters: u64,
}

enum Mode {
    WarmUp { until: Instant },
    Measure { samples: usize },
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::WarmUp { until } => {
                while Instant::now() < until {
                    black_box(routine());
                }
            }
            Mode::Measure { samples } => {
                let start = Instant::now();
                for _ in 0..samples {
                    black_box(routine());
                }
                self.total += start.elapsed();
                self.iters += samples as u64;
            }
        }
    }
}

/// Prevent the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

struct Report {
    mean: Duration,
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, f: &mut F) -> Report {
    let mut warm = Bencher {
        mode: Mode::WarmUp {
            until: Instant::now() + c.warm_up_time,
        },
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut warm);
    let mut bench = Bencher {
        mode: Mode::Measure {
            samples: c.sample_size,
        },
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bench);
    let iters = bench.iters.max(1);
    Report {
        mean: bench.total / iters as u32,
    }
}

fn print_report(name: &str, report: &Report, throughput: Option<&Throughput>) {
    let mean_ns = report.mean.as_nanos();
    match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0 => {
            let rate = *n as f64 / report.mean.as_secs_f64();
            println!("{name:<50} {mean_ns:>12} ns/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0 => {
            let rate = *n as f64 / report.mean.as_secs_f64();
            println!("{name:<50} {mean_ns:>12} ns/iter  {rate:>14.0} B/s");
        }
        _ => println!("{name:<50} {mean_ns:>12} ns/iter"),
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn group_and_macros_run() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2)
                .warm_up_time(std::time::Duration::from_millis(1))
                .measurement_time(std::time::Duration::from_millis(1));
            targets = sample_bench
        }
        benches();
    }
}
