//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert!`-family macros,
//! `prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, `collection::vec`, and printable-string
//! regex strategies (`\PC{m,n}`).
//!
//! Honest differences from real proptest: generation is plain seeded random
//! sampling (no shrinking, no persisted failure seeds). Failures panic with
//! the failing assertion message.

pub mod test_runner {
    /// Deterministic generator for test-case inputs (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Every `proptest!` block starts from the same seed so failures
        /// reproduce run-to-run.
        pub fn deterministic() -> Self {
            TestRng(0x5EED_CAFE_F00D_0001)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a generated case did not count as a pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// A `prop_assert!` failed.
        Fail(String),
    }

    /// Runner configuration (`ProptestConfig` in real proptest).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Types with a full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty strategy range");
                    s + rng.below((e - s) as u64 + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
                self.4.generate(rng),
            )
        }
    }

    #[allow(clippy::type_complexity)]
    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
        for (A, B, C, D, E, F)
    {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
                self.4.generate(rng),
                self.5.generate(rng),
            )
        }
    }

    /// String strategies from a printable-character regex: `\PC{m,n}`
    /// (and bare `\PC`). Anything else is unsupported and panics, which is
    /// the honest failure mode for a shim.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_repeat(self).unwrap_or_else(|| {
                panic!("proptest shim: unsupported string pattern {self:?} (only \\PC{{m,n}})")
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| (0x20 + rng.below(0x5f) as u8) as char) // printable ASCII
                .collect()
        }
    }

    fn parse_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix("\\PC")?;
        if rest.is_empty() {
            return Some((1, 1));
        }
        let body = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        pub options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(100),
                        "proptest shim: too many rejected cases ({} passed of {} wanted)",
                        passed,
                        config.cases,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}")
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}");
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}");
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![
                $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
            ],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0.0f64..1.0, w in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=4).contains(&w));
        }

        #[test]
        fn assume_filters(a in 0usize..6, b in 0usize..6) {
            prop_assume!(a >= b);
            prop_assert!(a >= b);
        }

        #[test]
        fn vec_and_oneof(v in collection::vec(any::<bool>(), 0..5),
                         op in prop_oneof![Just("+"), Just("-")]) {
            prop_assert!(v.len() < 5);
            prop_assert!(op == "+" || op == "-");
        }

        #[test]
        fn printable_strings(s in "\\PC{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
