#!/usr/bin/env bash
# CI gate: tier-1 verification plus style and lint checks.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release)"
cargo build --release

echo "== tests"
cargo test -q

echo "== rustfmt"
cargo fmt --check

echo "== clippy"
cargo clippy --all-targets --workspace -- -D warnings

echo "CI OK"
