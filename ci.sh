#!/usr/bin/env bash
# CI gate: tier-1 verification plus style, lint, simulation, and bench checks.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release)"
cargo build --release

echo "== tests"
cargo test -q

echo "== rustfmt"
cargo fmt --check

echo "== clippy"
# First-party crates additionally clear a curated slice of the pedantic
# group (vendored stand-ins are exempt: they mirror upstream API shapes).
cargo clippy --all-targets --workspace --exclude rand --exclude proptest \
  --exclude criterion -- -D warnings \
  -W clippy::semicolon_if_nothing_returned \
  -W clippy::explicit_iter_loop \
  -W clippy::redundant_closure_for_method_calls \
  -W clippy::inefficient_to_string \
  -W clippy::map_unwrap_or \
  -W clippy::unnested_or_patterns \
  -W clippy::manual_let_else \
  -W clippy::implicit_clone \
  -W clippy::cloned_instead_of_copied \
  -W clippy::flat_map_option \
  -W clippy::filter_map_next \
  -W clippy::manual_string_new \
  -W clippy::needless_continue \
  -W clippy::range_plus_one
cargo clippy --all-targets -p rand -p proptest -p criterion -- -D warnings

echo "== static analysis gate"
# Every bundled app must come through the lint pass warning-aware: `check
# --lint` exits 0 (lints are warnings), and the listing drift is caught by
# the golden guard below. The deny gate is asserted from both sides — a
# lint-clean app passes `--deny-lints`, a linty one is refused by it.
for prog in crates/apps/programs/*.lucid; do
  echo "-- lint $(basename "$prog")"
  target/release/lucidc check --lint "$prog" 2>/dev/null
done
target/release/lucidc check --deny-lints crates/apps/programs/nat.lucid >/dev/null 2>&1
if target/release/lucidc check --deny-lints \
    crates/apps/programs/stateful_firewall.lucid >/dev/null 2>&1; then
  echo "static analysis: --deny-lints let a linty program through" >&2
  exit 1
fi
echo "-- lint gate holds (nat clean, stateful_firewall refused under --deny-lints)"
# Memory safety is a compile-time property here: every first-party crate
# root forbids unsafe code outright.
for root in crates/*/src/lib.rs crates/cli/src/main.rs tests/src/lib.rs; do
  if ! grep -q '^#!\[forbid(unsafe_code)\]' "$root"; then
    echo "static analysis: $root is missing #![forbid(unsafe_code)]" >&2
    exit 1
  fi
done
echo "-- #![forbid(unsafe_code)] present in every crate root"

echo "== golden drift guard"
# Regenerate the per-opt-level bytecode disassembly into a temp dir and
# diff against the checked-in goldens: a stale golden file fails here
# with a readable diff instead of deep inside `cargo test`.
golden_tmp=$(mktemp -d)
trap 'rm -rf "$golden_tmp"' EXIT
UPDATE_GOLDEN=1 GOLDEN_DIR="$golden_tmp" \
  cargo test -q -p lucid-tests --test golden_bytecode >/dev/null
UPDATE_GOLDEN=1 GOLDEN_DIR="$golden_tmp" \
  cargo test -q -p lucid-tests --test golden_lints >/dev/null
if ! diff -ru tests/golden "$golden_tmp"; then
  echo "golden drift: tests/golden is stale; regenerate with" >&2
  echo "  UPDATE_GOLDEN=1 cargo test -p lucid-tests --test golden_bytecode" >&2
  echo "  UPDATE_GOLDEN=1 cargo test -p lucid-tests --test golden_lints" >&2
  echo "and review the diff like any other code change" >&2
  exit 1
fi
echo "-- 40 golden listings match"
# Disassembly stability for the packed encoding: a word listing is a
# pure function of the source program, so dumping the same app twice at
# the same opt level must produce byte-identical text. This catches
# nondeterminism the golden diff above cannot — e.g. hash-ordered
# side-table (wide/ext pool) emission or address-dependent rendering —
# and `--verify-bytecode` makes every dump decode-check the packed
# words (V0011) before printing.
for opt in 0 1 2; do
  for prog in crates/apps/programs/*.lucid; do
    a=$(target/release/lucidc sim --dump-bytecode --verify-bytecode --opt="$opt" "$prog")
    b=$(target/release/lucidc sim --dump-bytecode --verify-bytecode --opt="$opt" "$prog")
    if [ "$a" != "$b" ]; then
      echo "disassembly instability: $prog at --opt=$opt printed two different listings" >&2
      exit 1
    fi
  done
done
echo "-- packed-word disassembly stable across repeated dumps (10 apps x 3 opt levels)"

echo "== fuzz smoke"
# Bounded differential fuzzing: the vendored proptest shim is seeded, so
# this is deterministic; 64 cases across the Figure-9 apps must agree
# between the AST walker, the bytecode executor at BOTH --opt=0 and
# --opt=2 (an optimizer miscompile cannot hide behind an equally-wrong
# lowering, and vice versa), and the sharded engine — the opt sweep is
# inside the test itself (tests/tests/differential.rs).
LUCID_FUZZ_CASES=64 cargo test -q -p lucid-tests --test differential

echo "== sim gate"
# Every checked-in scenario must run green against its app: the file
# crates/apps/scenarios/<app>[.variant].sim.json pairs with
# crates/apps/programs/<app>.lucid. Run each under both engines and both
# handler executors.
shopt -s nullglob
scenarios=(crates/apps/scenarios/*.sim.json)
if [ "${#scenarios[@]}" -lt 8 ]; then
  echo "sim gate: expected at least 8 scenarios, found ${#scenarios[@]}" >&2
  exit 1
fi
for sc in "${scenarios[@]}"; do
  base=$(basename "$sc" .sim.json)
  app=${base%%.*}
  prog="crates/apps/programs/$app.lucid"
  # One run exactly as authored (no overrides), so scenario-pinned
  # engine/exec/opt fields stay exercised end to end.
  echo "-- sim [authored] $sc"
  target/release/lucidc sim "$prog" "$sc"
  for engine in sequential sharded; do
    echo "-- sim [$engine/ast] $sc"
    target/release/lucidc sim --engine="$engine" --exec=ast "$prog" "$sc"
    # The bytecode executor runs at both ends of the optimizer pipeline:
    # raw lowering and the full superinstruction + regalloc stack. Each
    # run is fronted by the bytecode verifier, so the code that executes
    # is the code the dataflow pass vouched for.
    for opt in 0 2; do
      echo "-- sim [$engine/bytecode/o$opt] $sc"
      target/release/lucidc sim --engine="$engine" --exec=bytecode --opt="$opt" \
        --verify-bytecode "$prog" "$sc"
    done
  done
done

echo "== workload scale"
# The generator subsystem's scale proof: rescale the bundled dns_flood
# scenario past one million injected events with `--events` (the stream
# is pulled lazily — no event vector is ever materialized) and require
# both engines to agree on the final state digest AND the latency-metrics
# digest (one mis-bucketed histogram sample in the sharded collector
# fails here, not just state divergence). The sharded soak is pinned at
# four workers, so a full worker pool exchanges a million events' worth
# of cross-shard mail and still lands digest-for-digest on sequential.
flood_json() {
  target/release/lucidc sim --engine="$1" "${@:2}" --exec=bytecode \
    --events=1000000 --json \
    crates/apps/programs/dns_defense.lucid \
    crates/apps/scenarios/dns_defense.flood.sim.json
}
j_seq=$(flood_json sequential)
j_sh=$(flood_json sharded --workers=4)
state_of()   { printf '%s' "$1" | sed -n 's/.*"state_digest":"\([0-9a-f]*\)".*/\1/p'; }
metrics_of() { printf '%s' "$1" | sed -n 's/.*"metrics":{"digest":"\([0-9a-f]*\)".*/\1/p'; }
d_seq=$(state_of "$j_seq"); d_sh=$(state_of "$j_sh")
m_seq=$(metrics_of "$j_seq"); m_sh=$(metrics_of "$j_sh")
if [ -z "$d_seq" ] || [ "$d_seq" != "$d_sh" ]; then
  echo "workload scale: engine digests differ at 1M events (seq=$d_seq sharded=$d_sh)" >&2
  exit 1
fi
if [ -z "$m_seq" ] || [ "$m_seq" != "$m_sh" ]; then
  echo "workload scale: metrics digests differ at 1M events (seq=$m_seq sharded=$m_sh)" >&2
  exit 1
fi
echo "-- 1M-event dns_flood digests agree: state $d_seq, metrics $m_seq"

echo "== serve gate"
# The persistent-service invariant: a session served by the `lucidc
# serve` daemon — opened on a truncated scenario, hot-swapped (same
# source, so the daemon's build cache reconfigures instead of
# re-parsing), fed the missing events over `ingest`, advanced in
# segments, snapshotted, restored into a *fresh* session, and drained —
# must land on exactly the state and metrics digests of the equivalent
# one-shot `lucidc sim` run, under both engines. The scripted client
# drives the daemon over stdin/stdout, one JSON request per line.
python3 - <<'EOF'
import json, subprocess, sys

LUCIDC = "target/release/lucidc"
PROG = "crates/apps/programs/dns_defense.lucid"
SC = "crates/apps/scenarios/dns_defense.sim.json"

full = json.load(open(SC))
times = [e["time_ns"] for e in full["events"]]
mid = sorted(times)[len(times) // 2]
trunc = dict(full)
trunc["events"] = [e for e in full["events"] if e["time_ns"] < mid]
trunc.pop("expect", None)
late = [e for e in full["events"] if e["time_ns"] >= mid]

for engine in ["sequential", "sharded"]:
    one = subprocess.run(
        [LUCIDC, "sim", f"--engine={engine}", "--json", PROG, SC],
        capture_output=True, text=True)
    assert one.returncode == 0, one.stderr
    rep = json.loads(one.stdout)
    want = (rep["state_digest"], rep["metrics"]["digest"])

    daemon = subprocess.Popen(
        [LUCIDC, "serve"], stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        text=True)

    def ask(req):
        daemon.stdin.write(json.dumps(req) + "\n")
        daemon.stdin.flush()
        reply = json.loads(daemon.stdout.readline())
        assert reply.get("ok"), f"{engine}: {req.get('op')} failed: {reply}"
        return reply

    opts = {"engine": engine}
    sc_doc = json.dumps(trunc)
    ask({"op": "open", "program_path": PROG, "scenario": sc_doc,
         "options": opts})
    # Swap before any event runs: same source, so the daemon's cached
    # build reconfigures (no re-parse) and the queued events remap 1:1.
    swap = ask({"op": "swap", "session": 1, "program_path": PROG})
    assert swap["queued_dropped"] == 0 and swap["arrays_reset"] == 0, swap
    ask({"op": "ingest", "session": 1, "events": late})
    ask({"op": "advance", "session": 1, "to_ns": mid})
    snap = ask({"op": "snapshot", "session": 1})["bytes"]
    # The snapshot transplants into a fresh session over the same
    # program + scenario; the donor is closed undrained.
    ask({"op": "open", "program_path": PROG, "scenario": sc_doc,
         "options": opts})
    ask({"op": "restore", "session": 2, "bytes": snap})
    ask({"op": "close", "session": 1})
    report = ask({"op": "drain", "session": 2})["report"]
    got = (report["state_digest"], report["metrics"]["digest"])
    shutdown = ask({"op": "shutdown"})
    assert shutdown.get("shutdown") is True, shutdown
    daemon.stdin.close()
    assert daemon.wait(timeout=30) == 0, "daemon exit code"

    if got != want:
        print(f"serve gate [{engine}]: served digests {got} != one-shot "
              f"{want}", file=sys.stderr)
        sys.exit(1)
    print(f"-- serve gate [{engine}]: served session matches one-shot "
          f"(state {got[0]}, metrics {got[1]})")
EOF

echo "== bench smoke"
# Every figure binary must run in smoke mode and emit parseable JSON.
json_check() {
  if command -v jq >/dev/null 2>&1; then
    jq -e . >/dev/null
  else
    python3 -c 'import json,sys; json.load(sys.stdin)'
  fi
}
for bin in fig09_apps fig10_loc_breakdown fig11_compile_times fig12_stage_ratio \
           fig13_parallelism fig14_delay_queue fig15_recirc_uses fig16_sfw_model \
           fig17_sfw_install; do
  echo "-- bench $bin"
  target/release/"$bin" --smoke --json | json_check
done

echo "== docs gate"
# Rustdoc over the first-party crates must be warning-clean (broken
# intra-doc links, redundant targets, bad code fences all fail); the
# vendored shims are exempt. Then every docs/*.md file the README links
# must actually exist — a renamed doc fails here, not as a 404 on GitHub.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p lucid-core -p lucid-frontend -p lucid-check -p lucid-backend \
  -p lucid-tofino -p lucid-interp -p lucid-apps -p lucid-bench \
  -p lucid-cli -p lucid-tests
echo "-- rustdoc warning-clean across first-party crates"
docs_missing=0
for doc in $(grep -o 'docs/[A-Za-z0-9_.-]*\.md' README.md | sort -u); do
  if [ ! -f "$doc" ]; then
    echo "docs gate: README links $doc but it does not exist" >&2
    docs_missing=1
  fi
done
[ "$docs_missing" -eq 0 ]
# The two reference docs are load-bearing for the README — keep them
# linked, not just present.
for doc in docs/ARCHITECTURE.md docs/scenario-schema.md; do
  if ! grep -q "$doc" README.md; then
    echo "docs gate: README no longer links $doc" >&2
    exit 1
  fi
done
echo "-- all README-linked docs/*.md files exist"

echo "== perf trajectory gate (BENCH_PR.json)"
# The interpreter-speed benchmarks run in smoke mode and their JSON is
# recorded at the repo root; the GitHub workflow uploads it as a build
# artifact, so every PR carries its measured numbers. Recorded floors
# (all measured with headroom on a single-core dev container) fail the
# gate when the bytecode-over-walker speedup or the sustained events/sec
# regresses:
#   fig_sim_throughput  bytecode_speedup >= 6.0   (measured ~13x)
#   fig_workload_scale  bytecode_speedup >= 10.0  (measured ~11-13x; the
#                       binary itself asserts the same floor)
#   fig_workload_scale  min_events_per_sec >= 20000 (measured ~170k)
#   fig_parallel_scale  speedup_w1 >= 0.93        (measured ~0.97-1.1:
#                       at one worker the sharded engine runs a single
#                       barrier-free round through the same scheduling
#                       core as the sequential driver, so the true ratio
#                       is parity; the bench reports the cleanest of its
#                       interleaved warmed rounds, and the floor is a
#                       backstop against a real machinery-cost
#                       regression — the precise number is tracked via
#                       BENCH_PR.json's trajectory)
#   fig_serve_ingest    events_per_sec >= 20000   (measured ~40-45k: the
#                       served rate includes per-request JSON parsing
#                       and reply rendering on top of the engine)
# fig_parallel_scale's scaling curve above one worker is recorded and
# its monotonicity flagged, but not gated: this container is
# single-core, so every extra worker is pure synchronization overhead.
st_json=$(target/release/fig_sim_throughput --smoke --json)
ws_json=$(target/release/fig_workload_scale --smoke --json)
ps_json=$(target/release/fig_parallel_scale --smoke --json)
sv_json=$(target/release/fig_serve_ingest --smoke --json)
printf '{"fig_sim_throughput":%s,"fig_workload_scale":%s,"fig_parallel_scale":%s,"fig_serve_ingest":%s}\n' \
  "$st_json" "$ws_json" "$ps_json" "$sv_json" > BENCH_PR.json
json_check < BENCH_PR.json
field() { # field <json> <key> — first numeric value of "key":N
  printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9.][0-9.]*\).*/\1/p" | head -n1
}
floor() { # floor <label> <value> <min>
  if ! awk -v v="$2" -v f="$3" 'BEGIN { exit !(v + 0 >= f + 0) }'; then
    echo "perf gate: $1 = $2 fell below the recorded floor $3" >&2
    exit 1
  fi
  echo "-- $1 = $2 (floor $3)"
}
floor "fig_sim_throughput bytecode_speedup" "$(field "$st_json" bytecode_speedup)" 6.0
floor "fig_workload_scale bytecode_speedup" "$(field "$ws_json" bytecode_speedup)" 10.0
floor "fig_workload_scale min_events_per_sec" "$(field "$ws_json" min_events_per_sec)" 20000
floor "fig_parallel_scale speedup_w1" "$(field "$ps_json" speedup_w1)" 0.93
floor "fig_serve_ingest events_per_sec" "$(field "$sv_json" events_per_sec)" 20000
# The monotone flag is only interpretable against the core count the
# sweep actually had, so both are printed (and recorded) together: on a
# single-core host a non-monotone curve is expected, on a multi-core
# host it is a regression worth a look.
host_par=$(field "$ps_json" available_parallelism)
case "$ps_json" in
  *'"monotone":true'*)
    echo "-- fig_parallel_scale scaling curve is monotone" \
         "(host available_parallelism: $host_par)" ;;
  *)
    echo "-- fig_parallel_scale scaling curve is NOT monotone (flagged," \
         "expected with available_parallelism=$host_par on this host;" \
         "curve recorded in BENCH_PR.json)" ;;
esac

# Render the latency-tail percentile rows human-readable next to the raw
# JSON; the workflow uploads both, so a PR's tail latencies are one
# click away without parsing BENCH_PR.json.
python3 - > BENCH_PERCENTILES.txt <<'EOF'
import json
with open("BENCH_PR.json") as f:
    doc = json.load(f)
cols = ["metrics_digest", "lat_p50_ns", "lat_p90_ns", "lat_p99_ns",
        "lat_p999_ns", "lat_max_ns", "res_p99_ns", "res_max_ns"]
print(f"{'bench':<20} " + " ".join(f"{c:>16}" for c in cols))
for name, fig in doc.items():
    tail = fig.get("latency_tail", {})
    print(f"{name:<20} " + " ".join(f"{tail.get(c, '-'):>16}" for c in cols))
EOF
echo "-- latency tail percentiles recorded (BENCH_PERCENTILES.txt):"
cat BENCH_PERCENTILES.txt

echo "CI OK"
