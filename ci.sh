#!/usr/bin/env bash
# CI gate: tier-1 verification plus style, lint, simulation, and bench checks.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release)"
cargo build --release

echo "== tests"
cargo test -q

echo "== rustfmt"
cargo fmt --check

echo "== clippy"
cargo clippy --all-targets --workspace -- -D warnings

echo "== fuzz smoke"
# Bounded differential fuzzing: the vendored proptest shim is seeded, so
# this is deterministic; 64 cases across the Figure-9 apps must agree
# between the AST walker, the bytecode executor, and the sharded engine.
LUCID_FUZZ_CASES=64 cargo test -q -p lucid-tests --test differential

echo "== sim gate"
# Every checked-in scenario must run green against its app: the file
# crates/apps/scenarios/<app>[.variant].sim.json pairs with
# crates/apps/programs/<app>.lucid. Run each under both engines and both
# handler executors.
shopt -s nullglob
scenarios=(crates/apps/scenarios/*.sim.json)
if [ "${#scenarios[@]}" -lt 8 ]; then
  echo "sim gate: expected at least 8 scenarios, found ${#scenarios[@]}" >&2
  exit 1
fi
for sc in "${scenarios[@]}"; do
  base=$(basename "$sc" .sim.json)
  app=${base%%.*}
  prog="crates/apps/programs/$app.lucid"
  for engine in sequential sharded; do
    for exec in ast bytecode; do
      echo "-- sim [$engine/$exec] $sc"
      target/release/lucidc sim --engine="$engine" --exec="$exec" "$prog" "$sc"
    done
  done
done

echo "== workload scale"
# The generator subsystem's scale proof: rescale the bundled dns_flood
# scenario past one million injected events with `--events` (the stream
# is pulled lazily — no event vector is ever materialized) and require
# both engines to agree on the final state digest.
digest() {
  target/release/lucidc sim --engine="$1" --exec=bytecode --events=1000000 --json \
    crates/apps/programs/dns_defense.lucid \
    crates/apps/scenarios/dns_defense.flood.sim.json \
    | sed -n 's/.*"state_digest":"\([0-9a-f]*\)".*/\1/p'
}
d_seq=$(digest sequential)
d_sh=$(digest sharded)
if [ -z "$d_seq" ] || [ "$d_seq" != "$d_sh" ]; then
  echo "workload scale: engine digests differ at 1M events (seq=$d_seq sharded=$d_sh)" >&2
  exit 1
fi
echo "-- 1M-event dns_flood digests agree: $d_seq"

echo "== bench smoke"
# Every figure binary must run in smoke mode and emit parseable JSON.
json_check() {
  if command -v jq >/dev/null 2>&1; then
    jq -e . >/dev/null
  else
    python3 -c 'import json,sys; json.load(sys.stdin)'
  fi
}
for bin in fig09_apps fig10_loc_breakdown fig11_compile_times fig12_stage_ratio \
           fig13_parallelism fig14_delay_queue fig15_recirc_uses fig16_sfw_model \
           fig17_sfw_install fig_sim_throughput fig_workload_scale; do
  echo "-- bench $bin"
  target/release/"$bin" --smoke --json | json_check
done

echo "CI OK"
