//! The stateful-firewall case study (§7.4): runs the Lucid SFW in the
//! interpreter, measures flow-installation time, and compares against the
//! remote-control (Mantis-style) baseline — a miniature Figure 17.
//!
//! ```sh
//! cargo run --example stateful_firewall
//! ```

use lucid_apps::sfw;
use lucid_tofino::{percentile, RemoteControlModel};

fn main() {
    println!("Stateful firewall: data-plane integrated vs remote control");
    println!("(1000 trials, 2048-slot cuckoo table, load factor 0.3125)\n");

    let bench = sfw::install_benchmark(1000, 0.3125, 2021);
    let mean = bench.times_ns.iter().sum::<f64>() / bench.times_ns.len() as f64;

    let remote = RemoteControlModel::default();
    let remote_times = remote.sample(1000, 2021);
    let remote_mean = remote_times.iter().sum::<f64>() / remote_times.len() as f64;

    println!("integrated control (Lucid, in the data plane):");
    println!(
        "  inline installs (0 ns):  {:5.1}%",
        bench.frac_inline * 100.0
    );
    println!("  mean install time:       {mean:8.0} ns");
    println!(
        "  p99 install time:        {:8.0} ns",
        percentile(&bench.times_ns, 99.0)
    );
    println!("  failed installs:         {:5}", bench.failures);

    println!("\nremote control (Mantis-style baseline on the switch CPU):");
    println!("  floor:                   {:8.0} ns", 12_000.0);
    println!("  mean install time:       {remote_mean:8.0} ns");
    println!(
        "  p99 install time:        {:8.0} ns",
        percentile(&remote_times, 99.0)
    );

    println!("\nspeedup (mean): {:.0}x", remote_mean / mean.max(1.0));
    println!("paper reports: avg 49 ns integrated vs 17.5 us remote — over 300x.");
}
