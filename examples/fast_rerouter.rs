//! The fast rerouter (§2, Figure 2) on a three-switch network: switch 1
//! forwards via neighbor 2 until switch 2 fails, then the data plane
//! detects the dead link (missed pings), withdraws the route, queries the
//! surviving neighbors, and reroutes via switch 3 — no controller, no
//! switch CPU.
//!
//! ```sh
//! cargo run --example fast_rerouter
//! ```

use lucid_core::{Interp, NetConfig};

fn main() {
    let app = lucid_apps::by_key("rr").expect("bundled");
    let prog = app.checked();
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));

    const DST: u64 = 5;

    // Control-plane-style initialization, as events: switch 1 reaches DST
    // via switch 2 (path length 2); switches 2 and 3 are one hop away
    // (they use port 9 toward the destination's subnet).
    sim.schedule(1, 0, "init_route", &[DST, 2, 2]).unwrap();
    sim.schedule(2, 0, "init_route", &[DST, 1, 9]).unwrap();
    sim.schedule(3, 0, "init_route", &[DST, 1, 9]).unwrap();

    // Fault-detection threads on every switch.
    for s in [1, 2, 3] {
        sim.schedule(s, 1_000, "ping_all", &[]).unwrap();
    }

    // Healthy phase.
    sim.schedule(1, 500_000, "pkt", &[DST]).unwrap();
    sim.run(500_000, 600_000).unwrap();
    println!(
        "healthy:             switch 1 delivers dst {DST} via {:?}",
        last_delivery(&sim)
    );

    // Switch 2 dies. Its pongs stop; within STALE_US (500 µs) switch 1's
    // link-status entry for it goes stale.
    sim.fail_switch(2);
    println!("switch 2 failed at t = {} ns", sim.now_ns);

    // The next packet finds the stale link: the data plane withdraws the
    // route, floods route queries, and switch 3's reply re-points the
    // next hop — all within a few microseconds.
    sim.clear_trace();
    sim.schedule(1, 1_400_000, "pkt", &[DST]).unwrap();
    sim.run(500_000, 1_500_000).unwrap();
    let reroutes = sim
        .trace
        .iter()
        .filter(|h| &*h.event == "route_reply" && h.switch == 1)
        .count();
    println!("reroute triggered:   {} route replies received", reroutes);

    sim.schedule(1, 1_600_000, "pkt", &[DST]).unwrap();
    sim.run(500_000, 1_700_000).unwrap();
    println!(
        "after failover:      switch 1 delivers dst {DST} via {:?}",
        last_delivery(&sim)
    );

    println!(
        "totals: {} events handled, {} recirculated, {} sent between switches, {} dropped at dead switch",
        sim.stats.handled, sim.stats.recirculated, sim.stats.sent_remote, sim.stats.dropped
    );
}

/// The next hop of the most recent `deliver` event at switch 1.
fn last_delivery(sim: &Interp) -> Option<u64> {
    sim.trace
        .iter()
        .rev()
        .find(|h| h.switch == 1 && &*h.event == "deliver")
        .map(|h| h.args[1])
}
