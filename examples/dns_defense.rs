//! The closed-loop DNS defense: a reflection attack trips the count-min
//! sketch threshold, the victim's traffic is blocked by the data-plane
//! Bloom blocklist, and the aging control thread eventually lifts the
//! mitigation — a full detect → mitigate → recover loop with no
//! controller involvement.
//!
//! ```sh
//! cargo run --example dns_defense
//! ```

use lucid_core::Interp;

fn main() {
    let app = lucid_apps::by_key("dns").expect("bundled");
    let prog = app.checked();
    let mut sim = Interp::single(&prog);

    const VICTIM: u64 = 777;

    // Phase 1: normal traffic passes.
    sim.schedule(1, 0, "client_pkt", &[1, VICTIM]).unwrap();
    sim.run_to_quiescence().unwrap();
    println!("before attack: victim reachable = {}", delivered(&sim));

    // Phase 2: a reflection attack — a burst of DNS responses aimed at
    // the victim. The sketch estimate crosses THRESHOLD (100) and the
    // handler inserts the victim into the Bloom blocklist on its own.
    sim.clear_trace();
    for i in 0..150u64 {
        sim.schedule(1, 10_000 + i * 100, "dns_resp", &[VICTIM])
            .unwrap();
    }
    sim.run_to_quiescence().unwrap();
    println!(
        "attack absorbed: {} responses, blocklist insertions = {}",
        150,
        sim.array(1, "blocked_cnt")[0]
    );

    sim.clear_trace();
    sim.schedule(1, 40_000, "client_pkt", &[1, VICTIM]).unwrap();
    sim.run_to_quiescence().unwrap();
    println!("during mitigation: victim reachable = {}", delivered(&sim));

    // Phase 3: the blocklist-aging thread sweeps the filter; after a full
    // sweep the mitigation lifts.
    sim.schedule(1, 50_000, "clear_bloom", &[0]).unwrap();
    // 2048 bits at one per 1000 us — run past one full sweep.
    sim.run(10_000_000, 2_200_000_000).unwrap();

    sim.clear_trace();
    sim.schedule(1, sim.now_ns + 1_000, "client_pkt", &[1, VICTIM])
        .unwrap();
    sim.run(100_000, sim.now_ns + 1_000_000).unwrap();
    println!("after aging sweep: victim reachable = {}", delivered(&sim));
}

fn delivered(sim: &Interp) -> bool {
    sim.trace.iter().any(|h| &*h.event == "deliver")
}
