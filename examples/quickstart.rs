//! Quickstart: write a Lucid program, check it, compile it to P4, and run
//! it in the event-driven interpreter.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lucid_core::{Compiler, Interp};

const PROGRAM: &str = r#"
    // A per-destination packet counter with a control event that ages it:
    // the 30-second version of integrated data-plane control.
    const int SLOTS = 256;
    global counts = new Array<<32>>(SLOTS);

    memop plus(int m, int x) { return m + x; }
    memop write(int m, int x) { return x; }

    event pkt(int dst);
    event reset(int idx);

    handle pkt(int dst) {
        auto slot = hash<<8>>(1, dst);
        Array.setm(counts, slot, plus, 1);
    }

    // A recursive control event: clears one slot per pipeline pass, then
    // re-schedules itself 100 microseconds later.
    handle reset(int idx) {
        Array.setm(counts, idx, write, 0);
        generate Event.delay(reset((idx + 1) & 255), 100);
    }
"#;

fn main() {
    // 1. Open a build session: parse, type-check (memops + ordered
    //    effects), lay out against the Tofino pipeline model, and generate
    //    P4_16 — each stage computed once, on demand.
    let mut build = Compiler::new().build("quickstart.lucid", PROGRAM);
    let art = build
        .artifacts()
        .unwrap_or_else(|_| panic!("program compiles:\n{}", build.render_diagnostics()));
    println!(
        "compiled: {} pipeline stages ({} before optimization), {} lines of P4",
        art.compiled.layout.total_stages,
        art.compiled.layout.unoptimized_stages,
        art.compiled.p4.loc.total(),
    );

    // 2. Run the same program in the interpreter: 1000 packets to a few
    //    destinations, with the aging thread running concurrently.
    let mut sim = Interp::single(&art.checked);
    sim.schedule(1, 0, "reset", &[0]).expect("reset scheduled");
    for i in 0..1000u64 {
        sim.schedule(1, 1_000 + i * 977, "pkt", &[i % 7])
            .expect("pkt scheduled");
    }
    // The aging thread never terminates, so run for a bounded window.
    sim.run(100_000, 2_000_000).expect("simulation runs");

    let counts = sim.array(1, "counts");
    let live: u64 = counts.iter().sum();
    println!("packets counted (after aging): {live}");
    println!(
        "events: {} handled, {} recirculated",
        sim.stats.handled, sim.stats.recirculated
    );

    // 3. A peek at the generated P4.
    let p4_head: String = art
        .compiled
        .p4
        .source
        .lines()
        .filter(|l| l.contains("RegisterAction") || l.contains("table tbl_"))
        .take(4)
        .collect::<Vec<_>>()
        .join("\n");
    println!("\ngenerated P4 (excerpt):\n{p4_head}");
}
