//! Integration gate for the bytecode verifier: every bundled Figure-9
//! app must compile to *verified* bytecode at every optimization level.
//! `compile_verified` re-runs the verifier after lowering and after each
//! optimizer pass, so a regression in `lower`, `peephole`, or `regalloc`
//! fails here with a V-code naming the guilty pass — before any
//! differential test gets a chance to observe the miscompile as a wrong
//! answer.

use lucid_core::OptLevel;
use lucid_interp::CompiledProg;

const LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

#[test]
fn bundled_apps_verify_at_every_level() {
    let mut checked = 0;
    for app in lucid_apps::all() {
        let prog = app.checked();
        for level in LEVELS {
            match CompiledProg::compile_verified(&prog, level) {
                Ok(_) => checked += 1,
                Err(vs) => {
                    let listing: Vec<String> = vs.iter().map(ToString::to_string).collect();
                    panic!(
                        "{} at O{}: verifier rejected the compiler's output:\n{}",
                        app.key,
                        level.label(),
                        listing.join("\n")
                    );
                }
            }
        }
    }
    assert_eq!(checked, 30, "ten apps x three levels must all verify");
}

/// The O1 check-elision pass must leave auditable proofs behind: when a
/// bounds check disappears, the handler carries an `Elision` record the
/// verifier independently re-derives. Across the app suite the pass
/// fires somewhere, so at least one proof must exist — otherwise the
/// verifier's hardest obligation (V0009) is never actually exercised by
/// real programs.
#[test]
fn elided_checks_leave_proofs_the_verifier_audits() {
    let mut proofs = 0;
    for app in lucid_apps::all() {
        let prog = app.checked();
        for level in [OptLevel::O1, OptLevel::O2] {
            let cp = CompiledProg::compile_verified(&prog, level)
                .unwrap_or_else(|vs| panic!("{} O{}: {vs:?}", app.key, level.label()));
            proofs += cp.handlers().map(|h| h.elisions().len()).sum::<usize>();
        }
    }
    assert!(
        proofs > 0,
        "no app's compilation elided a single bounds check; the V0009 \
         elision-proof path is dead code on the real suite"
    );
}

/// Lowering at O0 never records elisions — proofs exist only where the
/// optimizer actually removed a check, so the audit trail cannot be
/// polluted by records that correspond to no deletion.
#[test]
fn unoptimized_code_carries_no_elision_proofs() {
    for app in lucid_apps::all() {
        let prog = app.checked();
        let cp = CompiledProg::compile_verified(&prog, OptLevel::O0)
            .unwrap_or_else(|vs| panic!("{}: {vs:?}", app.key));
        for h in cp.handlers() {
            assert!(
                h.elisions().is_empty(),
                "{}: O0 handler carries elision proofs",
                app.key
            );
        }
    }
}
