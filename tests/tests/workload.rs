//! Integration tests of the streaming workload-generator subsystem:
//! seed-determinism of generator scenarios across the full engine x
//! executor matrix, lazy scaling through the `--events` override, and a
//! property sweep over randomly drawn generator specs.

use lucid_core::{
    run_scenario, run_scenario_with, ArgDist, Engine, ExecMode, GenSpec, Phase, Scenario,
    SimOptions, SimReport,
};
use proptest::prelude::*;

/// A mesh program with cross-switch forwarding, so the sharded engine's
/// epoch barriers are actually exercised by generated traffic.
const MESH: &str = r#"
    global cnt = new Array<<32>>(256);
    global mix = new Array<<32>>(256);
    memop plus(int m, int x) { return m + x; }
    event pkt(int key, int ttl);
    handle pkt(int key, int ttl) {
        auto i = hash<<8>>(1, key);
        int c = Array.update(cnt, i, plus, 1, plus, 1);
        auto j = hash<<8>>(2, c, key);
        Array.setm(mix, j, plus, key);
        if (ttl > 0) {
            generate Event.locate(pkt(key + c, ttl - 1), ((key + c) & 3) + 1);
        }
    }
"#;

fn checked(src: &str) -> lucid_core::CheckedProgram {
    lucid_core::check::parse_and_check(src).expect("program checks")
}

const GEN_SCENARIO: &str = r#"{
    "name": "gen-mesh",
    "net": {"switches": 4},
    "seed": 5,
    "limits": {"max_events": 500000},
    "generators": [
      {"name": "hot", "event": "pkt", "switches": [1, 2, 3, 4],
       "rate_eps": 1000000, "jitter_ns": 150, "count": 4000,
       "args": [{"zipf": {"n": 512, "s": 1.2}}, 2]},
      {"name": "sweep", "event": "pkt", "switch": 2,
       "rate_eps": 400000, "count": 2000,
       "args": [{"seq": 300}, 1]},
      {"name": "burst", "event": "pkt", "switch": 3,
       "interval_ns": 900, "start_ns": 1000, "count": 1500,
       "phases": [{"at_ns": 500000, "rate_eps": 4000000}],
       "args": [{"uniform": [0, 4095]}, 0]}
    ]
}"#;

/// What "bit-identical" means for a report: everything except wall-clock
/// — including the per-event-class latency/residency histograms, folded
/// into the metrics digest.
fn fingerprint(r: &SimReport) -> (u64, lucid_core::interp::Stats, Vec<(String, u64)>, u64, u64) {
    (
        r.state_digest,
        r.stats.clone(),
        r.gens.clone(),
        r.sim_ns,
        r.metrics.digest(),
    )
}

#[test]
fn generator_matrix_is_bit_identical_and_seed_sensitive() {
    let prog = checked(MESH);
    let sc = Scenario::from_json(GEN_SCENARIO).unwrap();
    let reference =
        run_scenario(&prog, &sc, Some(Engine::Sequential), Some(ExecMode::Ast)).unwrap();
    assert_eq!(
        reference.gens,
        vec![
            ("hot".to_string(), 4000),
            ("sweep".to_string(), 2000),
            ("burst".to_string(), 1500)
        ]
    );
    assert!(
        reference.stats.sent_remote > 1000,
        "workload must cross switches: {:?}",
        reference.stats
    );
    for engine in [
        Engine::Sequential,
        Engine::Sharded {
            workers: 2,
            epoch_ns: 0,
        },
        Engine::Sharded {
            workers: 4,
            epoch_ns: 250,
        },
    ] {
        for exec in [ExecMode::Ast, ExecMode::Bytecode] {
            let got = run_scenario(&prog, &sc, Some(engine), Some(exec)).unwrap();
            assert_eq!(
                fingerprint(&reference),
                fingerprint(&got),
                "[{}/{}] diverged from sequential/ast",
                engine.label(),
                exec.label()
            );
        }
    }
    // Same seed, same run — different seed, different traffic.
    let again = run_scenario(&prog, &sc, Some(Engine::Sequential), Some(ExecMode::Ast)).unwrap();
    assert_eq!(fingerprint(&reference), fingerprint(&again));
    let reseeded = run_scenario_with(
        &prog,
        &sc,
        &SimOptions {
            seed: Some(6),
            ..SimOptions::default()
        },
    )
    .unwrap();
    assert_ne!(reference.state_digest, reseeded.state_digest);
    assert_eq!(
        reseeded.stats.processed, reference.stats.processed,
        "a reseed moves keys around but not the volume"
    );
}

#[test]
fn events_override_scales_lazily_and_engines_still_agree() {
    let prog = checked(MESH);
    let sc = Scenario::from_json(GEN_SCENARIO).unwrap();
    // 7500 authored events scaled to 60k: per-generator counts stretch
    // proportionally and the stream still never materializes.
    let ov = SimOptions {
        events: Some(60_000),
        ..SimOptions::default()
    };
    let seq = run_scenario_with(&prog, &sc, &ov).unwrap();
    let injected: u64 = seq.gens.iter().map(|(_, n)| n).sum();
    assert_eq!(injected, 60_000);
    assert_eq!(seq.gens[0].1, 32_000, "{:?}", seq.gens);
    assert_eq!(seq.gens[1].1, 16_000, "{:?}", seq.gens);
    let sh = run_scenario_with(
        &prog,
        &sc,
        &SimOptions {
            engine: Some(Engine::Sharded {
                workers: 3,
                epoch_ns: 0,
            }),
            exec: Some(ExecMode::Bytecode),
            ..ov
        },
    )
    .unwrap();
    assert_eq!(fingerprint(&seq), fingerprint(&sh));
}

/// The bundled generator scenarios must be reproducible from their files
/// alone: same file, same seed, same digest on every engine x executor.
#[test]
fn bundled_generator_scenarios_are_matrix_deterministic() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
    let mut found = 0;
    for entry in std::fs::read_dir(root.join("crates/apps/scenarios")).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let Some(base) = name.strip_suffix(".sim.json") else {
            continue;
        };
        let sc = Scenario::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        if sc.generators.is_empty() {
            continue;
        }
        found += 1;
        let app = base.split('.').next().unwrap();
        let prog = checked(
            &std::fs::read_to_string(root.join(format!("crates/apps/programs/{app}.lucid")))
                .unwrap(),
        );
        let reference =
            run_scenario(&prog, &sc, Some(Engine::Sequential), Some(ExecMode::Ast)).unwrap();
        assert!(reference.passed(), "{name}: {:?}", reference.mismatches);
        for engine in [
            Engine::Sequential,
            Engine::Sharded {
                workers: 2,
                epoch_ns: 0,
            },
        ] {
            for exec in [ExecMode::Ast, ExecMode::Bytecode] {
                let got = run_scenario(&prog, &sc, Some(engine), Some(exec)).unwrap();
                assert_eq!(
                    fingerprint(&reference),
                    fingerprint(&got),
                    "{name} [{}/{}]",
                    engine.label(),
                    exec.label()
                );
            }
        }
    }
    assert!(found >= 2, "expected >= 2 bundled generator scenarios");
}

// --------------------------------------------------------------- proptest

/// Build a scenario around randomly drawn generator specs.
fn scenario_of(switches: u64, seed: u64, gens: Vec<GenSpec>) -> Scenario {
    Scenario {
        name: "prop".into(),
        description: String::new(),
        switches: (1..=switches).collect(),
        link_latency_ns: 1_000,
        recirc_latency_ns: 600,
        engine: Engine::Sequential,
        exec: ExecMode::Ast,
        opt: Default::default(),
        max_events: 1_000_000,
        max_time_ns: u64::MAX,
        seed,
        init: Vec::new(),
        events: Vec::new(),
        generators: gens,
        failures: Vec::new(),
        expect: Default::default(),
        metrics: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random generator specs (every distribution kind, random rates,
    /// jitter, windows, phases): the engine x executor matrix must stay
    /// bit-identical, and injection counts must satisfy the spec bounds.
    #[test]
    fn random_generator_specs_stay_deterministic(
        switches in 1u64..=4,
        seed in 0u64..=1_000,
        raw in proptest::collection::vec(
            (1u64..=400, 0u64..=200, 1u64..=120, 0u64..=3, 1u64..=64, 0u64..=2),
            1..4
        )
    ) {
        let prog = checked(MESH);
        let gens: Vec<GenSpec> = raw
            .iter()
            .enumerate()
            .map(|(i, (interval, jitter, count, dist, n, s_sel))| {
                let key_dist = match dist {
                    0 => ArgDist::Const(n % 7),
                    1 => ArgDist::Uniform { lo: 0, hi: *n },
                    2 => ArgDist::Zipf {
                        n: *n,
                        s: [0.8, 1.0, 1.3][*s_sel as usize],
                    },
                    _ => ArgDist::Seq { n: *n },
                };
                GenSpec {
                    name: format!("g{i}"),
                    event: "pkt".into(),
                    switches: (1..=(1 + (n % switches))).collect(),
                    interval_ns: *interval,
                    jitter_ns: *jitter,
                    start_ns: i as u64 * 50,
                    stop_ns: None,
                    count: Some(*count),
                    seed: *n,
                    args: vec![key_dist, ArgDist::Const(1)],
                    phases: if *s_sel == 2 {
                        vec![Phase { at_ns: 5_000, interval_ns: (*interval / 2).max(1) }]
                    } else {
                        Vec::new()
                    },
                }
            })
            .collect();
        let total: u64 = gens.iter().map(|g| g.count.unwrap()).sum();
        let sc = scenario_of(switches, seed, gens);
        let reference =
            run_scenario(&prog, &sc, Some(Engine::Sequential), Some(ExecMode::Ast)).unwrap();
        let injected: u64 = reference.gens.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(injected, total);
        for (engine, exec) in [
            (Engine::Sequential, ExecMode::Bytecode),
            (Engine::Sharded { workers: 2, epoch_ns: 0 }, ExecMode::Ast),
            (Engine::Sharded { workers: 3, epoch_ns: 0 }, ExecMode::Bytecode),
        ] {
            let got = run_scenario(&prog, &sc, Some(engine), Some(exec)).unwrap();
            prop_assert_eq!(&fingerprint(&reference), &fingerprint(&got));
        }
    }
}
