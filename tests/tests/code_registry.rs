//! The diagnostic-code registry: every stable code the toolchain can
//! emit — `E0xxx` errors, `W00xx` checker warnings, `W05xx` lints, and
//! `V0xxx` bytecode-verifier violations — is pinned here with its
//! meaning. The test scans the workspace sources for exact code
//! literals, so
//!
//! * inventing a code without registering it fails (users grep these
//!   codes; each one is interface, not implementation), and
//! * retiring a code without deleting its registry row fails (the
//!   registry never advertises codes the tools cannot produce), and
//! * every code sits in its phase's numeric range, so a code's prefix
//!   alone tells a user which subsystem complained.
//!
//! The scanner is deliberately dumb — a literal `"X0123"` string match,
//! no regex dependency — which is exactly the greppability property the
//! codes promise users.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Every stable diagnostic code, with the one-line meaning a user would
/// find in the README catalog.
const REGISTRY: &[(&str, &str)] = &[
    // E01xx — lexing/parsing.
    ("E0100", "syntax error (lexer or parser)"),
    // E02xx — symbol resolution.
    ("E0200", "unresolved or duplicate symbol"),
    // E03xx — memop validation (the paper's §4.2 sALU discipline).
    ("E0300", "memop violates the single-ALU form"),
    // E04xx — the ordered type-and-effect system (§5).
    ("E0400", "type error"),
    ("E0401", "global accessed out of pipeline order"),
    ("E0402", "handler parameter shadows a global"),
    ("E0403", "width mismatch in assignment or call"),
    // E06xx — elaboration to atomic tables.
    ("E0600", "handler cannot be elaborated to atomic tables"),
    // E07xx — layout against the pipeline model.
    ("E0700", "program does not fit the target pipeline"),
    // W00xx — checker warnings (dead code).
    ("W0001", "expression result is unused"),
    ("W0002", "unreachable statement"),
    // W05xx — the lint pass (`lucidc check --lint`).
    ("W0501", "unused local variable"),
    ("W0502", "unused handler or function parameter"),
    ("W0503", "unused global array"),
    ("W0504", "statement after a generate-terminated if/else"),
    ("W0505", "condition always evaluates to the same value"),
    ("W0506", "handler neither reads nor writes any global"),
    ("W0507", "global accessed at more than one syntactic site"),
    // V0xxx — the bytecode verifier (`lucidc sim --verify-bytecode`).
    ("V0001", "read of an uninitialized register"),
    ("V0002", "register index outside the handler frame"),
    ("V0003", "object slot index outside the handler frame"),
    ("V0004", "read of an uninitialized or consumed object slot"),
    ("V0005", "bad width or unmasked immediate"),
    ("V0006", "jump target not a forward in-span boundary"),
    ("V0007", "handler does not end in halt"),
    ("V0008", "pool index out of range"),
    ("V0009", "array access neither checked nor elision-proven"),
    ("V0010", "event arity or argument-list violation"),
    ("V0011", "packed instruction word does not decode"),
];

/// Exact-literal scan: a code is "emitted" iff the 7-byte sequence
/// `"X0123"` (quotes included) appears in a workspace source file.
fn codes_in(text: &str, out: &mut BTreeSet<String>) {
    let b = text.as_bytes();
    let mut i = 0;
    while i + 7 <= b.len() {
        if b[i] == b'"'
            && matches!(b[i + 1], b'E' | b'W' | b'V')
            && b[i + 2..i + 6].iter().all(u8::is_ascii_digit)
            && b[i + 6] == b'"'
        {
            out.insert(String::from_utf8_lossy(&b[i + 1..i + 6]).into_owned());
            i += 7;
        } else {
            i += 1;
        }
    }
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read workspace dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // `vendor/` carries third-party shims whose codes (if any)
            // are not this toolchain's interface.
            if path
                .file_name()
                .is_some_and(|n| n == "vendor" || n == "target")
            {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn emitted_codes() -> BTreeSet<String> {
    let crates = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .join("crates");
    let mut files = Vec::new();
    rust_sources(&crates, &mut files);
    assert!(files.len() > 10, "scan found too few sources: {files:?}");
    let mut codes = BTreeSet::new();
    for f in files {
        codes_in(
            &std::fs::read_to_string(&f).expect("read source"),
            &mut codes,
        );
    }
    codes
}

#[test]
fn every_emitted_code_is_registered_and_vice_versa() {
    let emitted = emitted_codes();
    let registered: BTreeSet<String> = REGISTRY.iter().map(|(c, _)| c.to_string()).collect();
    assert_eq!(
        registered.len(),
        REGISTRY.len(),
        "duplicate code in the registry"
    );
    let unregistered: Vec<&String> = emitted.difference(&registered).collect();
    assert!(
        unregistered.is_empty(),
        "codes emitted but not in the registry (add a row + README entry): {unregistered:?}"
    );
    let stale: Vec<&String> = registered.difference(&emitted).collect();
    assert!(
        stale.is_empty(),
        "registry rows no source emits (retire them): {stale:?}"
    );
}

#[test]
fn codes_sit_in_their_phase_ranges() {
    for (code, _) in REGISTRY {
        let (prefix, num) = code.split_at(1);
        let num: u32 = num.parse().expect("numeric code");
        let ok = match prefix {
            // E05xx is deliberately unassigned (reserved between the
            // front-end and back-end phases).
            "E" => matches!(num / 100, 1 | 2 | 3 | 4 | 6 | 7),
            "W" => matches!(num / 100, 0 | 5),
            "V" => num / 100 == 0 && num > 0,
            _ => false,
        };
        assert!(ok, "{code} is outside its phase's numeric range");
    }
}

#[test]
fn scanner_recognizes_exact_literals_only() {
    let mut got = BTreeSet::new();
    codes_in(
        r#"x("E0100") y("W0501z") "notE0200" "V0009" "E999" "W00010""#,
        &mut got,
    );
    let want: BTreeSet<String> = ["E0100", "V0009"].map(String::from).into();
    assert_eq!(got, want);
}
