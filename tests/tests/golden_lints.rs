//! Golden-file tests for the lint pass: the rendered `lucidc check
//! --lint` listing of every bundled Figure-9 app is pinned under
//! `tests/golden/<key>.lints.txt`. A diff means a lint's trigger, span,
//! message, or the diagnostic renderer changed — regenerate deliberately
//! with `UPDATE_GOLDEN=1 cargo test -p lucid-tests --test golden_lints`
//! and review the diff like any other code change.
//!
//! Pinning the *full* listings (not just counts) keeps the W05xx codes
//! honest as a stable interface: editors and CI scripts may match on
//! them, so a code renumbering shows up here as a reviewable diff.
//!
//! `GOLDEN_DIR=<dir>` redirects reads/writes, exactly like the bytecode
//! goldens, so the `ci.sh` drift guard covers both families in one diff.

use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    match std::env::var_os("GOLDEN_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden"),
    }
}

/// The pinned artifact: rendered diagnostics, or an explicit marker so a
/// lint-clean app still has a golden file (and a *new* lint firing on a
/// clean app shows up as a diff, not a missing-file error).
fn lint_listing(app: &lucid_apps::AppInfo) -> String {
    let mut build = lucid_core::Compiler::new().build(&format!("{}.lucid", app.key), app.source);
    let lints = build
        .lint()
        .unwrap_or_else(|ds| panic!("{} does not check: {ds}", app.key))
        .clone();
    if lints.is_empty() {
        "clean: no lints\n".to_string()
    } else {
        lints.render(build.source_map())
    }
}

#[test]
fn bundled_app_lints_match_golden_files() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut checked = 0;
    for app in lucid_apps::all() {
        let listing = lint_listing(&app);
        let path = dir.join(format!("{}.lints.txt", app.key));
        if update {
            std::fs::write(&path, &listing).expect("write golden");
            checked += 1;
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
                app.key,
                path.display()
            )
        });
        assert_eq!(
            listing,
            want,
            "{}: lint listing drifted from {}; if intended, regenerate with \
             UPDATE_GOLDEN=1 and review the diff",
            app.key,
            path.display()
        );
        checked += 1;
    }
    assert_eq!(checked, 10, "all ten Figure-9 apps must have lint goldens");
}

/// The lint pass is deterministic: diagnostics arrive in declaration
/// order, never hash-map order, so the golden files cannot flap.
#[test]
fn lint_listings_are_deterministic() {
    for app in lucid_apps::all().into_iter().take(3) {
        let a = lint_listing(&app);
        let b = lint_listing(&app);
        assert_eq!(a, b, "{}", app.key);
    }
}

/// The bundled apps are the repo's showcase: whatever the linter says
/// about them must be warning-severity only (the pinned listings can
/// name real findings, but never errors), and every code must be W05xx.
#[test]
fn bundled_app_lints_are_warnings_with_stable_codes() {
    for app in lucid_apps::all() {
        let mut build =
            lucid_core::Compiler::new().build(&format!("{}.lucid", app.key), app.source);
        let lints = build.lint().expect("app checks").clone();
        assert!(!lints.has_errors(), "{}: lint emitted an error", app.key);
        let rendered = lints.render(build.source_map());
        for line in rendered.lines() {
            if let Some(rest) = line.split("warning[").nth(1) {
                let code = rest.split(']').next().unwrap_or("");
                assert!(
                    code.starts_with("W05"),
                    "{}: lint emitted non-W05xx code `{code}`",
                    app.key
                );
            }
        }
    }
}
