//! The `lucidc serve` wire protocol, request by request: golden
//! transcripts for every verb, the structured error surface (malformed
//! JSON, unknown sessions, rejected swaps, corrupted snapshots — never a
//! panic), and the headline invariant: a served session is bit-identical
//! to the one-shot `sim` run it decomposes, through snapshots, restores,
//! and segmented advances, under both engines.

use lucid_core::{
    handle_line, run_scenario_with, BuildHost, CheckHost, Compiler, Engine, Scenario, ServeState,
    SimOptions, SimSession,
};

const COUNTER: &str = r#"
global cts = new Array<<32>>(64);
memop plus(int m, int x) { return m + x; }
event pkt(int idx);
handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
"#;

const SCENARIO: &str = r#"{
  "name": "served",
  "net": {"switches": 2},
  "events": [
    {"time_ns": 0,   "switch": 1, "event": "pkt", "args": [3]},
    {"time_ns": 100, "switch": 2, "event": "pkt", "args": [3]},
    {"time_ns": 200, "switch": 1, "event": "pkt", "args": [5]}
  ]
}"#;

/// Quote a string as a JSON literal.
fn q(s: &str) -> String {
    format!("\"{}\"", lucid_core::json_escape(s))
}

/// One request through a `CheckHost`-backed server.
fn ask(state: &mut ServeState, host: &mut CheckHost, line: &str) -> String {
    handle_line(state, host, line).reply().to_string()
}

fn open_line() -> String {
    format!(
        "{{\"op\":\"open\",\"program\":{},\"scenario\":{}}}",
        q(COUNTER),
        q(SCENARIO)
    )
}

// ------------------------------------------------------------ verb goldens

#[test]
fn open_replies_with_the_session_header() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    let reply = ask(&mut state, &mut host, &open_line());
    assert_eq!(
        reply,
        "{\"ok\":true,\"session\":1,\"scenario\":\"served\",\"switches\":2,\
         \"engine\":\"sequential\",\"exec\":\"ast\",\"opt\":2}"
    );
    // Session ids are allocated in order, never reused.
    let reply = ask(&mut state, &mut host, &open_line());
    assert!(reply.contains("\"session\":2"), "{reply}");
}

#[test]
fn open_accepts_engine_and_exec_options() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    let line = format!(
        "{{\"op\":\"open\",\"program\":{},\"scenario\":{},\
         \"options\":{{\"engine\":\"sharded\",\"exec\":\"ast\",\"workers\":2}}}}",
        q(COUNTER),
        q(SCENARIO)
    );
    let reply = ask(&mut state, &mut host, &line);
    assert!(reply.contains("\"engine\":\"sharded\""), "{reply}");
    assert!(reply.contains("\"exec\":\"ast\""), "{reply}");

    // Workers beside the sequential engine is rejected like the CLI.
    let line = format!(
        "{{\"op\":\"open\",\"program\":{},\"scenario\":{},\
         \"options\":{{\"engine\":\"sequential\",\"workers\":2}}}}",
        q(COUNTER),
        q(SCENARIO)
    );
    let reply = ask(&mut state, &mut host, &line);
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(
        reply.contains("only applies to the sharded engine"),
        "{reply}"
    );
}

#[test]
fn advance_and_query_report_deterministic_status() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    ask(&mut state, &mut host, &open_line());
    let reply = ask(
        &mut state,
        &mut host,
        "{\"op\":\"advance\",\"session\":1,\"to_ns\":100}",
    );
    // Events at t=0 and t=100 have run; t=200 is still queued.
    assert!(
        reply.starts_with("{\"ok\":true,\"session\":1,\"now_ns\":"),
        "{reply}"
    );
    assert!(reply.contains("\"processed\":2"), "{reply}");
    assert!(reply.contains("\"pending\":1"), "{reply}");
    assert!(reply.contains("\"state_digest\":\""), "{reply}");

    let reply = ask(
        &mut state,
        &mut host,
        "{\"op\":\"query\",\"session\":1,\"array\":{\"switch\":2,\"name\":\"cts\"},\"metrics\":true}",
    );
    let cells: Vec<&str> = reply
        .split("\"array\":[")
        .nth(1)
        .and_then(|r| r.split(']').next())
        .expect("array in reply")
        .split(',')
        .collect();
    assert_eq!(cells[3], "1", "switch 2 counted idx 3 once: {reply}");
    assert!(reply.contains("\"metrics\":{"), "{reply}");
}

#[test]
fn ingest_schedules_events_and_attaches_generators() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    ask(&mut state, &mut host, &open_line());
    let reply = ask(
        &mut state,
        &mut host,
        "{\"op\":\"ingest\",\"session\":1,\"events\":[\
         {\"time_ns\":300,\"switch\":1,\"event\":\"pkt\",\"args\":[7]},\
         {\"time_ns\":400,\"switch\":2,\"event\":\"pkt\",\"args\":[7]}]}",
    );
    assert_eq!(
        reply,
        "{\"ok\":true,\"session\":1,\"ingested\":2,\"generators_attached\":0}"
    );

    let reply = ask(
        &mut state,
        &mut host,
        "{\"op\":\"ingest\",\"session\":1,\"generators\":[\
         {\"name\":\"g\",\"event\":\"pkt\",\"interval_ns\":50,\"count\":10,\
          \"args\":[{\"seq\":64}]}]}",
    );
    assert_eq!(
        reply,
        "{\"ok\":true,\"session\":1,\"ingested\":0,\"generators_attached\":1}"
    );

    // Drain sees all of it: 3 scenario events + 2 ingested + 10 generated.
    let reply = ask(&mut state, &mut host, "{\"op\":\"drain\",\"session\":1}");
    assert!(reply.contains("\"events_handled\":15"), "{reply}");
    assert!(reply.contains("\"name\":\"g\",\"injected\":10"), "{reply}");
    assert!(state.is_empty(), "drain closes the session");
}

#[test]
fn snapshot_restore_round_trips_over_the_wire() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    ask(&mut state, &mut host, &open_line());
    ask(
        &mut state,
        &mut host,
        "{\"op\":\"advance\",\"session\":1,\"to_ns\":100}",
    );
    let snap = ask(&mut state, &mut host, "{\"op\":\"snapshot\",\"session\":1}");
    assert!(
        snap.starts_with("{\"ok\":true,\"session\":1,\"len\":"),
        "{snap}"
    );
    let hex = snap
        .split("\"bytes\":\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .expect("hex payload");

    // Drive the original forward, then rewind it with the snapshot.
    ask(
        &mut state,
        &mut host,
        "{\"op\":\"advance\",\"session\":1,\"to_ns\":200}",
    );
    let reply = ask(
        &mut state,
        &mut host,
        &format!("{{\"op\":\"restore\",\"session\":1,\"bytes\":\"{hex}\"}}"),
    );
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(
        reply.contains("\"processed\":2"),
        "rewound to t=100: {reply}"
    );
    assert!(reply.contains("\"pending\":1"), "{reply}");
}

#[test]
fn swap_reports_the_carry_statistics() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    ask(&mut state, &mut host, &open_line());
    ask(
        &mut state,
        &mut host,
        "{\"op\":\"advance\",\"session\":1,\"to_ns\":100}",
    );
    // Same interface, different handler body: `cts` carries over.
    let v2 = COUNTER.replace("plus, 1", "plus, 2");
    let reply = ask(
        &mut state,
        &mut host,
        &format!("{{\"op\":\"swap\",\"session\":1,\"program\":{}}}", q(&v2)),
    );
    assert_eq!(
        reply,
        // One `cts` per switch carries over; nothing is reset or dropped.
        "{\"ok\":true,\"session\":1,\"arrays_carried\":2,\"arrays_reset\":0,\
         \"queued_remapped\":1,\"queued_dropped\":0,\"sources_disabled\":0}"
    );
    // The queued t=200 event now runs under the new handler: +2, not +1.
    let reply = ask(
        &mut state,
        &mut host,
        "{\"op\":\"query\",\"session\":1,\"array\":{\"switch\":1,\"name\":\"cts\"}}",
    );
    let after = ask(
        &mut state,
        &mut host,
        "{\"op\":\"advance\",\"session\":1,\"to_ns\":200}",
    );
    assert!(after.contains("\"processed\":3"), "{after}");
    let cells = ask(
        &mut state,
        &mut host,
        "{\"op\":\"query\",\"session\":1,\"array\":{\"switch\":1,\"name\":\"cts\"}}",
    );
    let nth = |reply: &str, i: usize| {
        reply
            .split("\"array\":[")
            .nth(1)
            .and_then(|r| r.split(']').next())
            .map(|cells| cells.split(',').nth(i).unwrap().to_string())
            .expect("array in reply")
    };
    assert_eq!(nth(&reply, 3), "1", "pre-advance: old increments only");
    assert_eq!(nth(&cells, 5), "2", "idx 5 ran under the swapped handler");
}

#[test]
fn close_and_shutdown_wind_the_sessions_down() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    ask(&mut state, &mut host, &open_line());
    ask(&mut state, &mut host, &open_line());
    let reply = ask(&mut state, &mut host, "{\"op\":\"close\",\"session\":1}");
    assert_eq!(reply, "{\"ok\":true,\"session\":1,\"closed\":true}");
    assert_eq!(state.len(), 1);

    // Shutdown drains the survivors and replies with their final reports.
    let out = handle_line(&mut state, &mut CheckHost, "{\"op\":\"shutdown\"}");
    let lucid_core::Outcome::Shutdown(reply) = out else {
        panic!("shutdown must end the loop: {out:?}");
    };
    assert!(
        reply.starts_with("{\"ok\":true,\"shutdown\":true,\"reports\":["),
        "{reply}"
    );
    assert!(reply.contains("\"session\":2"), "{reply}");
    assert!(reply.contains("\"events_handled\":3"), "{reply}");
    assert!(state.is_empty());
}

// ------------------------------------------------------------ error paths

#[test]
fn malformed_requests_are_structured_errors_not_panics() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    for (line, kind, needle) in [
        ("{ not json", "protocol", "not valid JSON"),
        ("[1,2,3]", "protocol", "expected an object"),
        ("{\"no\":\"op\"}", "protocol", "missing required field `op`"),
        ("{\"op\":\"warp\"}", "protocol", "unknown op `warp`"),
        (
            "{\"op\":\"open\",\"scenario\":\"{}\"}",
            "protocol",
            "open needs `program` or `program_path`",
        ),
        (
            "{\"op\":\"advance\",\"session\":41,\"to_ns\":1}",
            "unknown_session",
            "no open session 41",
        ),
        (
            "{\"op\":\"snapshot\",\"session\":0}",
            "unknown_session",
            "no open session 0",
        ),
    ] {
        let reply = ask(&mut state, &mut host, line);
        assert!(
            reply.starts_with("{\"ok\":false,\"error\":{"),
            "{line} -> {reply}"
        );
        assert!(
            reply.contains(&format!("\"kind\":\"{kind}\"")),
            "{line} -> {reply}"
        );
        assert!(reply.contains(needle), "{line} -> {reply}");
    }
    assert!(state.is_empty(), "no session leaked from failed requests");
}

#[test]
fn compile_and_scenario_failures_name_their_kind() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    let reply = ask(
        &mut state,
        &mut host,
        &format!(
            "{{\"op\":\"open\",\"program\":\"event dup(); event dup();\",\"scenario\":{}}}",
            q("{}")
        ),
    );
    assert!(reply.contains("\"kind\":\"compile\""), "{reply}");

    let reply = ask(
        &mut state,
        &mut host,
        &format!(
            "{{\"op\":\"open\",\"program\":{},\"scenario\":\"{{ nope\"}}",
            q(COUNTER)
        ),
    );
    assert!(reply.contains("\"kind\":\"scenario\""), "{reply}");

    // A scenario that parses but does not validate against the program.
    let bad = r#"{"events": [{"time_ns": 0, "switch": 1, "event": "zap", "args": []}]}"#;
    let reply = ask(
        &mut state,
        &mut host,
        &format!(
            "{{\"op\":\"open\",\"program\":{},\"scenario\":{}}}",
            q(COUNTER),
            q(bad)
        ),
    );
    assert!(reply.contains("\"kind\":\"scenario\""), "{reply}");
    assert!(reply.contains("zap"), "{reply}");
    assert!(state.is_empty());
}

#[test]
fn swap_that_fails_the_typecheck_is_rejected_and_harmless() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    ask(&mut state, &mut host, &open_line());
    ask(
        &mut state,
        &mut host,
        "{\"op\":\"advance\",\"session\":1,\"to_ns\":100}",
    );
    let reply = ask(
        &mut state,
        &mut host,
        "{\"op\":\"swap\",\"session\":1,\"program\":\"memop bad(int m, int x) { return m * m; }\"}",
    );
    assert!(reply.contains("\"kind\":\"swap\""), "{reply}");
    // The session survives a rejected swap, world intact.
    let reply = ask(&mut state, &mut host, "{\"op\":\"drain\",\"session\":1}");
    assert!(reply.contains("\"events_handled\":3"), "{reply}");
}

#[test]
fn corrupted_snapshots_are_rejected_with_offsets() {
    let (mut state, mut host) = (ServeState::new(), CheckHost);
    ask(&mut state, &mut host, &open_line());
    let snap = ask(&mut state, &mut host, "{\"op\":\"snapshot\",\"session\":1}");
    let hex = snap
        .split("\"bytes\":\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .expect("hex payload")
        .to_string();

    // Not hex at all.
    let reply = ask(
        &mut state,
        &mut host,
        "{\"op\":\"restore\",\"session\":1,\"bytes\":\"zz\"}",
    );
    assert!(reply.contains("\"kind\":\"snapshot\""), "{reply}");
    assert!(reply.contains("bad hex"), "{reply}");

    // Truncated payload: a bounds error with a byte offset, not a panic.
    let truncated = &hex[..(hex.len() / 2) & !1];
    let reply = ask(
        &mut state,
        &mut host,
        &format!("{{\"op\":\"restore\",\"session\":1,\"bytes\":\"{truncated}\"}}"),
    );
    assert!(reply.contains("\"kind\":\"snapshot\""), "{reply}");
    assert!(reply.contains("corrupt snapshot at byte"), "{reply}");

    // Flipped magic: rejected before any state is touched.
    let mut flipped = hex.clone();
    flipped.replace_range(0..2, if &hex[0..2] == "00" { "ff" } else { "00" });
    let reply = ask(
        &mut state,
        &mut host,
        &format!("{{\"op\":\"restore\",\"session\":1,\"bytes\":\"{flipped}\"}}"),
    );
    assert!(reply.contains("\"kind\":\"snapshot\""), "{reply}");

    // A snapshot from a *different program* is refused by fingerprint.
    let other = format!(
        "{{\"op\":\"open\",\"program\":{},\"scenario\":{}}}",
        q("global other = new Array<<32>>(8);\nevent tick(int i);\nhandle tick(int i) { int j = i; }"),
        q("{}")
    );
    ask(&mut state, &mut host, &other);
    let reply = ask(
        &mut state,
        &mut host,
        &format!("{{\"op\":\"restore\",\"session\":2,\"bytes\":\"{hex}\"}}"),
    );
    assert!(reply.contains("different program"), "{reply}");

    // After all that abuse, the original session still drains clean.
    let reply = ask(&mut state, &mut host, "{\"op\":\"drain\",\"session\":1}");
    assert!(reply.contains("\"events_handled\":3"), "{reply}");
}

// ----------------------------------------------------- bit-identity gates

/// Everything a run must agree on, with the two wall-clock fields and the
/// `wall_ms`-bearing report dropped.
fn fingerprint(report: &lucid_core::SimReport) -> (u64, u64, String, String) {
    (
        report.state_digest,
        report.metrics.digest(),
        format!("{:?}", report.stats),
        format!("{:?}", report.gens),
    )
}

#[test]
fn served_sessions_are_bit_identical_to_one_shot_runs() {
    let prog = lucid_core::check::parse_and_check(COUNTER).expect("program checks");
    let sc = Scenario::from_json(SCENARIO).expect("scenario parses");
    for engine in [
        Engine::Sequential,
        Engine::Sharded {
            workers: 2,
            epoch_ns: 0,
        },
    ] {
        let opts = SimOptions::new().engine(engine);
        let oneshot = run_scenario_with(&prog, &sc, &opts).expect("one-shot runs");

        // Segmented advance: odd step sizes, a snapshot/restore detour in
        // the middle, then drain.
        let mut session = SimSession::open(&prog, &sc, &opts).expect("session opens");
        session.advance(70).expect("advance");
        let snap = session.snapshot().expect("snapshot");
        session.advance(130).expect("advance");
        session.restore(&snap).expect("restore rewinds");
        session.advance(130).expect("re-advance");
        let served = session.drain().expect("drain");

        assert_eq!(fingerprint(&served), fingerprint(&oneshot), "{engine:?}");

        // A restored world replays into the *same* trace, not just the
        // same digest.
        let mut a = SimSession::open(&prog, &sc, &opts).expect("session opens");
        a.advance(u64::MAX).expect("run");
        let mut b = SimSession::open(&prog, &sc, &opts).expect("session opens");
        b.advance(70).expect("advance");
        let snap = b.snapshot().expect("snapshot");
        b.restore(&snap).expect("restore");
        b.advance(u64::MAX).expect("run");
        assert_eq!(
            format!("{:?}", a.world().trace),
            format!("{:?}", b.world().trace),
            "{engine:?}"
        );
    }
}

#[test]
fn snapshots_transplant_between_sessions() {
    let prog = lucid_core::check::parse_and_check(COUNTER).expect("program checks");
    let sc = Scenario::from_json(SCENARIO).expect("scenario parses");
    let opts = SimOptions::default();
    let oneshot = run_scenario_with(&prog, &sc, &opts).expect("one-shot runs");

    let mut donor = SimSession::open(&prog, &sc, &opts).expect("session opens");
    donor.advance(100).expect("advance");
    let snap = donor.snapshot().expect("snapshot");

    // A fresh session over the same program + scenario adopts the world.
    let mut heir = SimSession::open(&prog, &sc, &opts).expect("session opens");
    heir.restore(&snap).expect("restore");
    let served = heir.drain().expect("drain");
    assert_eq!(fingerprint(&served), fingerprint(&oneshot));
}

#[test]
fn build_host_recompiles_only_when_the_source_changes() {
    let mut state = ServeState::new();
    let mut host = BuildHost::new(Compiler::new());
    let open = format!(
        "{{\"op\":\"open\",\"program\":{},\"scenario\":{}}}",
        q(COUNTER),
        q(SCENARIO)
    );
    let reply = handle_line(&mut state, &mut host, &open)
        .reply()
        .to_string();
    assert!(reply.contains("\"ok\":true"), "{reply}");

    // Swapping in the identical source reconfigures the cached build
    // instead of re-parsing (the stats stay at one parse, one check).
    let swap = format!(
        "{{\"op\":\"swap\",\"session\":1,\"program\":{}}}",
        q(COUNTER)
    );
    let reply = handle_line(&mut state, &mut host, &swap)
        .reply()
        .to_string();
    assert!(reply.contains("\"arrays_carried\":2"), "{reply}");
    let build = host.build(1).expect("session build cached");
    assert_eq!((build.stats().parse_runs, build.stats().check_runs), (1, 1));
}
