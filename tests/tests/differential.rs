//! Differential property testing of the interpreter's two executors:
//! random event schedules, initial array states, and topologies for the
//! bundled Figure-9 applications, asserting AST-walker == bytecode ==
//! sharded-bytecode on everything observable — final array state,
//! statistics, trace, and printf output — and on runtime faults.
//!
//! The case count defaults low so `cargo test` stays quick; CI's
//! fuzz-smoke step raises it with `LUCID_FUZZ_CASES=64`. The vendored
//! proptest shim always starts from one fixed seed, so failures
//! reproduce run-to-run.

use lucid_core::{CheckedProgram, Engine, ExecMode, Interp, InterpError, NetConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// `LUCID_FUZZ_CASES` overrides the per-property case count (CI smoke).
fn cases() -> u32 {
    std::env::var("LUCID_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// The Figure-9 apps, parsed and checked once per process.
fn apps() -> &'static Vec<(&'static str, CheckedProgram)> {
    static APPS: OnceLock<Vec<(&'static str, CheckedProgram)>> = OnceLock::new();
    APPS.get_or_init(|| {
        lucid_apps::all()
            .into_iter()
            .map(|app| (app.key, app.checked()))
            .collect()
    })
}

/// One generated workload: a topology, initial pokes, and injections.
#[derive(Debug, Clone)]
struct Workload {
    app: usize,
    switches: u64,
    workers: usize,
    /// `(switch_sel, array_sel, index_sel, value)` — resolved modulo the
    /// app's actual arrays.
    pokes: Vec<(u64, u64, u64, u64)>,
    /// `(switch_sel, time_ns, event_sel, arg pool)` — resolved modulo
    /// the app's actual events; each event takes its arity's worth of
    /// args from the pool.
    events: Vec<(u64, u64, u64, [u64; 4])>,
}

/// Everything observable about one finished (or faulted) run.
type Outcome = Result<
    (
        Vec<Vec<Vec<u64>>>,
        lucid_core::interp::Stats,
        Vec<lucid_core::interp::Handled>,
        Vec<String>,
    ),
    InterpError,
>;

fn run(w: &Workload, engine: Engine, exec: ExecMode) -> Outcome {
    let (_, prog) = &apps()[w.app];
    let mut cfg = NetConfig::mesh(w.switches);
    cfg.engine = engine;
    cfg.exec = exec;
    let mut sim = Interp::new(prog, cfg);
    for (sw, arr, idx, val) in &w.pokes {
        let g = &prog.info.globals[(*arr as usize) % prog.info.globals.len()];
        sim.poke(
            (*sw % w.switches) + 1,
            &g.name,
            (*idx % g.len) as usize,
            *val,
        );
    }
    for (sw, t, ev, pool) in &w.events {
        let e = &prog.info.events[(*ev as usize) % prog.info.events.len()];
        let name = e.name.clone();
        let args: Vec<u64> = pool.iter().take(e.params.len()).copied().collect();
        sim.schedule((*sw % w.switches) + 1, *t, &name, &args)?;
    }
    // A virtual-time horizon bounds the self-perpetuating control loops
    // (sketch sweeps, timer scans) several apps run.
    sim.run(50_000, 200_000)?;
    let arrays = (1..=w.switches)
        .map(|s| {
            prog.info
                .globals
                .iter()
                .filter_map(|g| sim.try_array(s, &g.name).map(<[u64]>::to_vec))
                .collect()
        })
        .collect();
    Ok((
        arrays,
        sim.stats.clone(),
        sim.trace.clone(),
        sim.output.clone(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The headline property: for every Figure-9 app and any workload,
    /// the bytecode executor is observably identical to the AST walker
    /// under the sequential engine, and the sharded engine reproduces
    /// both on successful runs.
    #[test]
    fn figure9_apps_ast_bytecode_sharded_agree(
        app in 0u64..10_000,
        switches in 1u64..=4,
        workers in 1usize..=3,
        pokes in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), 0u64..=1_000), 0..4),
        events in proptest::collection::vec(
            (any::<u64>(), 0u64..=50_000, any::<u64>(), (0u64..=300, 0u64..=300, 0u64..=300, 0u64..=300)),
            1..16,
        ),
    ) {
        let w = Workload {
            app: (app as usize) % apps().len(),
            switches,
            workers,
            pokes,
            events: events
                .into_iter()
                .map(|(sw, t, ev, (a, b, c, d))| (sw, t, ev, [a, b, c, d]))
                .collect(),
        };
        let reference = run(&w, Engine::Sequential, ExecMode::Ast);
        let bytecode = run(&w, Engine::Sequential, ExecMode::Bytecode);
        // Sequential runs must agree on *everything*, faults included:
        // same fault kind, same offending event key, same state left
        // behind by the writes that preceded the fault.
        prop_assert_eq!(&reference, &bytecode);

        if reference.is_ok() {
            let sharded = run(
                &w,
                Engine::Sharded { workers: w.workers, epoch_ns: 0 },
                ExecMode::Bytecode,
            );
            prop_assert_eq!(&reference, &sharded);
        }
    }
}

/// A deterministic (non-random) sweep: one representative schedule per
/// app through the full engine x exec matrix. This keeps every app on
/// the differential path even when the property above samples few cases.
#[test]
fn every_app_runs_identically_across_the_matrix() {
    for (i, (key, _)) in apps().iter().enumerate() {
        let events: Vec<(u64, u64, u64, [u64; 4])> = (0..8)
            .map(|k| (k, k * 900, k + 1, [k % 7, (3 * k) % 11, k % 4, k % 2]))
            .collect();
        let w = Workload {
            app: i,
            switches: 3,
            workers: 2,
            pokes: vec![(0, 0, 0, 5)],
            events,
        };
        let reference = run(&w, Engine::Sequential, ExecMode::Ast);
        for (engine, elabel) in [
            (Engine::Sequential, "sequential"),
            (
                Engine::Sharded {
                    workers: 2,
                    epoch_ns: 0,
                },
                "sharded",
            ),
        ] {
            for exec in [ExecMode::Ast, ExecMode::Bytecode] {
                if reference.is_err() && elabel == "sharded" {
                    // Error runs differ in sharded bookkeeping only; the
                    // sequential comparison above still pins them.
                    continue;
                }
                let got = run(&w, engine, exec);
                assert_eq!(
                    reference,
                    got,
                    "{key}: {elabel}/{} diverges from the reference",
                    exec.label()
                );
            }
        }
        // Ensure the workload actually did something.
        if let Ok((_, stats, ..)) = &reference {
            assert!(stats.processed > 0, "{key}: empty run");
        }
    }
}
