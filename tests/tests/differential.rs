//! Differential property testing of the interpreter's executors:
//! random event schedules, initial array states, and topologies for the
//! bundled Figure-9 applications, asserting AST-walker == unoptimized
//! bytecode == optimized bytecode == sharded-bytecode on everything
//! observable — final array state, statistics, trace, and printf output
//! — and on runtime faults. Sweeping the bytecode executor at both
//! `--opt=0` and `--opt=2` means an optimizer miscompile cannot hide
//! behind an equally-wrong lowering (and vice versa).
//!
//! The case count defaults low so `cargo test` stays quick; CI's
//! fuzz-smoke step raises it with `LUCID_FUZZ_CASES=64`. The vendored
//! proptest shim always starts from one fixed seed, so failures
//! reproduce run-to-run.

use lucid_core::{CheckedProgram, Engine, ExecMode, Interp, InterpError, NetConfig, OptLevel};
use proptest::prelude::*;
use std::sync::OnceLock;

/// `LUCID_FUZZ_CASES` overrides the per-property case count (CI smoke).
fn cases() -> u32 {
    std::env::var("LUCID_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// The Figure-9 apps, parsed and checked once per process.
fn apps() -> &'static Vec<(&'static str, CheckedProgram)> {
    static APPS: OnceLock<Vec<(&'static str, CheckedProgram)>> = OnceLock::new();
    APPS.get_or_init(|| {
        lucid_apps::all()
            .into_iter()
            .map(|app| (app.key, app.checked()))
            .collect()
    })
}

/// Worker counts every sharded comparison sweeps: the lone-worker
/// fast path, even and odd pools, a prime that misaligns the
/// round-robin shard partition, and a pool wider than most topologies.
const WORKER_SWEEP: [usize; 6] = [1, 2, 3, 4, 7, 8];

/// One generated workload: a topology, initial pokes, and injections.
#[derive(Debug, Clone)]
struct Workload {
    app: usize,
    switches: u64,
    workers: usize,
    /// `(switch_sel, array_sel, index_sel, value)` — resolved modulo the
    /// app's actual arrays.
    pokes: Vec<(u64, u64, u64, u64)>,
    /// `(switch_sel, time_ns, event_sel, arg pool)` — resolved modulo
    /// the app's actual events; each event takes its arity's worth of
    /// args from the pool.
    events: Vec<(u64, u64, u64, [u64; 4])>,
}

/// Everything observable about one finished (or faulted) run. The final
/// `u64` is the metrics digest — per-event-class latency/residency
/// histograms folded to one value — so a single mis-bucketed sample in
/// the sharded collector shows up as a differential failure.
type Outcome = Result<
    (
        Vec<Vec<Vec<u64>>>,
        lucid_core::interp::Stats,
        Vec<lucid_core::interp::Handled>,
        Vec<String>,
        u64,
    ),
    InterpError,
>;

fn run(w: &Workload, engine: Engine, exec: ExecMode, opt: OptLevel) -> Outcome {
    let (key, prog) = &apps()[w.app];
    // Verify before executing: a miscompile must fail here with a V-code
    // naming the guilty pass, not downstream as a state divergence the
    // differential harness would have to diagnose back to the optimizer.
    if exec == ExecMode::Bytecode {
        if let Err(vs) = lucid_core::interp::CompiledProg::compile_verified(prog, opt) {
            panic!("{key}: verifier rejected O{} bytecode: {vs:?}", opt.label());
        }
    }
    let mut cfg = NetConfig::mesh(w.switches);
    cfg.engine = engine;
    cfg.exec = exec;
    cfg.opt = opt;
    let mut sim = Interp::new(prog, cfg);
    for (sw, arr, idx, val) in &w.pokes {
        let g = &prog.info.globals[(*arr as usize) % prog.info.globals.len()];
        sim.poke(
            (*sw % w.switches) + 1,
            &g.name,
            (*idx % g.len) as usize,
            *val,
        );
    }
    for (sw, t, ev, pool) in &w.events {
        let e = &prog.info.events[(*ev as usize) % prog.info.events.len()];
        let name = e.name.clone();
        let args: Vec<u64> = pool.iter().take(e.params.len()).copied().collect();
        sim.schedule((*sw % w.switches) + 1, *t, &name, &args)?;
    }
    // A virtual-time horizon bounds the self-perpetuating control loops
    // (sketch sweeps, timer scans) several apps run.
    sim.run(50_000, 200_000)?;
    let arrays = (1..=w.switches)
        .map(|s| {
            prog.info
                .globals
                .iter()
                .filter_map(|g| sim.try_array(s, &g.name).map(<[u64]>::to_vec))
                .collect()
        })
        .collect();
    Ok((
        arrays,
        sim.stats.clone(),
        sim.trace.clone(),
        sim.output.clone(),
        sim.metrics().digest(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The headline property: for every Figure-9 app and any workload,
    /// the bytecode executor is observably identical to the AST walker
    /// under the sequential engine, and the sharded engine reproduces
    /// both on successful runs.
    #[test]
    fn figure9_apps_ast_bytecode_sharded_agree(
        app in 0u64..10_000,
        switches in 1u64..=4,
        // Index into WORKER_SWEEP: exercises the barrier-free lone-worker
        // path, small pools, and pools larger than the switch count
        // (clamped to one shard per worker internally).
        wsel in 0usize..WORKER_SWEEP.len(),
        pokes in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), 0u64..=1_000), 0..4),
        events in proptest::collection::vec(
            (any::<u64>(), 0u64..=50_000, any::<u64>(), (0u64..=300, 0u64..=300, 0u64..=300, 0u64..=300)),
            1..16,
        ),
    ) {
        let w = Workload {
            app: (app as usize) % apps().len(),
            switches,
            workers: WORKER_SWEEP[wsel],
            pokes,
            events: events
                .into_iter()
                .map(|(sw, t, ev, (a, b, c, d))| (sw, t, ev, [a, b, c, d]))
                .collect(),
        };
        let reference = run(&w, Engine::Sequential, ExecMode::Ast, OptLevel::O2);
        // Sequential runs must agree on *everything*, faults included:
        // same fault kind, same offending event key, same state left
        // behind by the writes that preceded the fault — at the raw
        // lowering AND under the full optimizer pipeline.
        for opt in [OptLevel::O0, OptLevel::O2] {
            let bytecode = run(&w, Engine::Sequential, ExecMode::Bytecode, opt);
            prop_assert_eq!(&reference, &bytecode);
        }

        if reference.is_ok() {
            let sharded = run(
                &w,
                Engine::Sharded { workers: w.workers, epoch_ns: 0 },
                ExecMode::Bytecode,
                OptLevel::O2,
            );
            prop_assert_eq!(&reference, &sharded);
        }
    }
}

/// A deterministic (non-random) sweep: one representative schedule per
/// app through the full engine x exec x opt matrix. This keeps every
/// app on the differential path even when the property above samples
/// few cases.
#[test]
fn every_app_runs_identically_across_the_matrix() {
    for (i, (key, _)) in apps().iter().enumerate() {
        let events: Vec<(u64, u64, u64, [u64; 4])> = (0..8)
            .map(|k| (k, k * 900, k + 1, [k % 7, (3 * k) % 11, k % 4, k % 2]))
            .collect();
        let w = Workload {
            app: i,
            switches: 3,
            workers: 2,
            pokes: vec![(0, 0, 0, 5)],
            events,
        };
        let reference = run(&w, Engine::Sequential, ExecMode::Ast, OptLevel::O2);
        let mut engines = vec![(Engine::Sequential, "sequential".to_string())];
        for workers in WORKER_SWEEP {
            engines.push((
                Engine::Sharded {
                    workers,
                    epoch_ns: 0,
                },
                format!("sharded-w{workers}"),
            ));
        }
        for (engine, elabel) in engines {
            let combos = [
                (ExecMode::Ast, OptLevel::O2),
                (ExecMode::Bytecode, OptLevel::O0),
                (ExecMode::Bytecode, OptLevel::O1),
                (ExecMode::Bytecode, OptLevel::O2),
            ];
            for (exec, opt) in combos {
                if reference.is_err() && engine != Engine::Sequential {
                    // Error runs differ in sharded bookkeeping only; the
                    // sequential comparison above still pins them.
                    continue;
                }
                let got = run(&w, engine, exec, opt);
                assert_eq!(
                    reference,
                    got,
                    "{key}: {elabel}/{}/O{} diverges from the reference",
                    exec.label(),
                    opt.label()
                );
            }
        }
        // Ensure the workload actually did something — and that the
        // metrics collector actually saw it (a digest of empty
        // histograms would make the equality above vacuous).
        if let Ok((_, stats, _, _, digest)) = &reference {
            assert!(stats.processed > 0, "{key}: empty run");
            assert_ne!(
                *digest,
                lucid_core::Metrics::default().digest(),
                "{key}: metrics digest is the empty digest despite processed events"
            );
        }
    }
}

/// Regression for shift-overflow semantics: `x << n` / `x >> n` keep
/// `x`'s width and a count at or past that width yields 0 — identically
/// in the AST walker and the bytecode executor at every optimization
/// level (const-operand fusion must not change shift-width rules), for
/// every operand width and every count up to well past 64 (where
/// `wrapping_shl` would have wrapped the count instead).
#[test]
fn shift_counts_past_the_width_agree_across_executors() {
    let src = r#"
        global shl8  = new Array<<8>>(80);
        global shr8  = new Array<<8>>(80);
        global shl16 = new Array<<16>>(80);
        global shr16 = new Array<<16>>(80);
        global shl32 = new Array<<32>>(80);
        global shr32 = new Array<<32>>(80);
        global shl64 = new Array<<64>>(80);
        global shr64 = new Array<<64>>(80);
        event go(int<<8>> a, int<<16>> b, int<<32>> c, int<<64>> d, int n);
        handle go(int<<8>> a, int<<16>> b, int<<32>> c, int<<64>> d, int n) {
            Array.set(shl8,  n, a << n);
            Array.set(shr8,  n, a >> n);
            Array.set(shl16, n, b << n);
            Array.set(shr16, n, b >> n);
            Array.set(shl32, n, c << n);
            Array.set(shr32, n, c >> n);
            Array.set(shl64, n, d << n);
            Array.set(shr64, n, d >> n);
        }
    "#;
    let prog = lucid_core::check::parse_and_check(src).expect("program checks");
    let vals: [u64; 4] = [0xAB, 0xBEEF, 0xDEAD_BEEF, 0xDEAD_BEEF_CAFE_F00D];
    let mut observed = Vec::new();
    let mut combos = vec![(ExecMode::Ast, OptLevel::O2)];
    combos.extend([OptLevel::O0, OptLevel::O1, OptLevel::O2].map(|l| (ExecMode::Bytecode, l)));
    for (exec, opt) in combos {
        let mut cfg = NetConfig::single();
        cfg.exec = exec;
        cfg.opt = opt;
        let mut sim = Interp::new(&prog, cfg);
        for n in 0..80u64 {
            sim.schedule(1, n * 100, "go", &[vals[0], vals[1], vals[2], vals[3], n])
                .unwrap();
        }
        sim.run_to_quiescence().unwrap();
        let arrays: Vec<Vec<u64>> = [
            "shl8", "shr8", "shl16", "shr16", "shl32", "shr32", "shl64", "shr64",
        ]
        .iter()
        .map(|a| sim.array(1, a).to_vec())
        .collect();
        observed.push(arrays);
    }
    for o in &observed[1..] {
        assert_eq!(&observed[0], o, "executors disagree on shifts");
    }

    // Pin the semantics themselves, not just executor agreement.
    let mask = |w: u32| if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
    for (i, &w) in [8u32, 16, 32, 64].iter().enumerate() {
        let x = vals[i] & mask(w);
        for n in 0..80u64 {
            let want_shl = if n >= w as u64 { 0 } else { (x << n) & mask(w) };
            let want_shr = if n >= w as u64 { 0 } else { x >> n };
            assert_eq!(
                observed[0][2 * i][n as usize],
                want_shl,
                "width {w}: {x:#x} << {n}"
            );
            assert_eq!(
                observed[0][2 * i + 1][n as usize],
                want_shr,
                "width {w}: {x:#x} >> {n}"
            );
        }
    }
}
