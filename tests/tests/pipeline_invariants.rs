//! Cross-crate invariants of the compiler backend, checked on every
//! bundled application: placement respects the hardware model, generated
//! P4 is structurally complete, and the evaluation metrics are internally
//! consistent.

use lucid_core::{Artifacts, Compiler, LayoutOptions, PipelineSpec};
use std::collections::HashMap;

/// Compile one bundled app through a build session.
fn build_app(app: &lucid_apps::AppInfo) -> Artifacts {
    let mut build = Compiler::new().build(app.key, app.source);
    build
        .artifacts()
        .unwrap_or_else(|_| panic!("{} compiles:\n{}", app.key, build.render_diagnostics()))
}

#[test]
fn every_array_lives_in_exactly_one_stage() {
    for app in lucid_apps::all() {
        let art = build_app(&app);
        let c = art.compiled;
        // Each array appears in the stage map once, and in stage_stats in
        // exactly that stage.
        for (gid, stage) in &c.layout.array_stage {
            let hosting: Vec<usize> = c
                .layout
                .stage_stats
                .iter()
                .enumerate()
                .filter(|(_, st)| st.arrays.contains(gid))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(hosting, vec![*stage], "{}: array {gid:?}", app.key);
        }
    }
}

#[test]
fn placement_respects_data_dependencies() {
    // Re-derive read-after-write constraints from the IR and confirm the
    // committed placement honors them (writer strictly before reader on
    // non-exclusive paths).
    for app in lucid_apps::all() {
        let art = build_app(&app);
        let c = art.compiled;
        let stage_of: HashMap<(String, usize), usize> = c
            .layout
            .placements
            .iter()
            .map(|p| ((p.handler.clone(), p.table), p.stage))
            .collect();
        for h in &c.handlers {
            for t in &h.tables {
                let t_stage = stage_of[&(h.name.clone(), t.id)];
                let uses: Vec<&str> = t.op.uses();
                let guard_vars: Vec<&str> = t.guard.iter().map(|c| c.var.as_str()).collect();
                for p in &h.tables {
                    if p.id >= t.id || t.excludes(p) {
                        continue;
                    }
                    if let Some(def) = p.op.def() {
                        if uses.contains(&def) || guard_vars.contains(&def) {
                            let p_stage = stage_of[&(h.name.clone(), p.id)];
                            assert!(
                                p_stage < t_stage,
                                "{}: {} t{} (s{p_stage}) must precede t{} (s{t_stage}) — RAW on {def}",
                                app.key,
                                h.name,
                                p.id,
                                t.id
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn stage_resources_stay_within_the_spec() {
    let spec = PipelineSpec::tofino();
    for app in lucid_apps::all() {
        let art = build_app(&app);
        let c = art.compiled;
        for (i, st) in c.layout.stage_stats.iter().enumerate() {
            assert!(
                st.arrays.len() <= spec.salus_per_stage,
                "{} stage {i}: {} arrays > {} sALUs",
                app.key,
                st.arrays.len(),
                spec.salus_per_stage
            );
            assert!(
                st.action_ops <= spec.action_slots_per_stage,
                "{} stage {i}: {} action ops",
                app.key,
                st.action_ops
            );
            assert!(
                st.merged_tables <= spec.tables_per_stage,
                "{} stage {i}: {} merged tables",
                app.key,
                st.merged_tables
            );
        }
    }
}

#[test]
fn generated_p4_is_structurally_complete() {
    for app in lucid_apps::all() {
        let art = build_app(&app);
        let (prog, c) = (art.checked, art.compiled);
        let p4 = &c.p4.source;
        // One header + one parser state per event.
        for ev in &prog.info.events {
            assert!(
                p4.contains(&format!("header ev_{}_t", ev.name)),
                "{}: {}",
                app.key,
                ev.name
            );
            assert!(
                p4.contains(&format!("parse_ev_{}", ev.name)),
                "{}: {}",
                app.key,
                ev.name
            );
        }
        // One register per global.
        for g in &prog.info.globals {
            assert!(
                p4.contains(&format!("reg_{}", g.name)),
                "{}: {}",
                app.key,
                g.name
            );
        }
        // Scheduler skeleton present.
        assert!(p4.contains("lucid_dispatch"), "{}", app.key);
        assert!(p4.contains("control LucidEgress"), "{}", app.key);
        // Every memory table got a RegisterAction.
        let mem_tables: usize = c
            .handlers
            .iter()
            .flat_map(|h| &h.tables)
            .filter(|t| t.op.salus() > 0)
            .count();
        let reg_actions = p4.matches("RegisterAction<").count();
        assert_eq!(reg_actions, mem_tables, "{}", app.key);
    }
}

#[test]
fn loc_classification_is_complete_and_disjoint() {
    for app in lucid_apps::all() {
        let art = build_app(&app);
        let c = art.compiled;
        let nonblank = c.p4.source.lines().filter(|l| !l.trim().is_empty()).count();
        assert_eq!(c.p4.loc.total(), nonblank, "{}", app.key);
    }
}

#[test]
fn merge_key_budget_trades_tables_for_stages() {
    // DESIGN.md §4 ablation: a tighter merge budget means more logical
    // tables per stage are needed, which can only lengthen the pipeline.
    // One session, retargeted: the front end runs once for both layouts.
    let app = lucid_apps::by_key("dns").unwrap();
    let tall = PipelineSpec {
        stages: 256,
        ..PipelineSpec::tofino()
    };
    let mut build = Compiler::new()
        .target(tall.clone())
        .layout(LayoutOptions {
            merge_key_budget: 1,
            ..LayoutOptions::default()
        })
        .build(app.key, app.source);
    let tight = build.layout().unwrap().total_stages;
    build.reconfigure(&Compiler::new().target(tall).layout(LayoutOptions {
        merge_key_budget: 8,
        ..LayoutOptions::default()
    }));
    let loose = build.layout().unwrap().total_stages;
    assert!(tight >= loose, "tight {tight} vs loose {loose}");
    assert_eq!(
        build.stats().check_runs,
        1,
        "front end ran once for both targets"
    );
}

#[test]
fn dispatcher_overhead_is_exactly_configured() {
    let app = lucid_apps::by_key("cm").unwrap();
    let mut build = Compiler::new()
        .layout(LayoutOptions {
            dispatcher_stages: 0,
            ..LayoutOptions::default()
        })
        .build(app.key, app.source);
    let with0 = build.layout().unwrap().total_stages;
    build.reconfigure(&Compiler::new().layout(LayoutOptions {
        dispatcher_stages: 2,
        ..LayoutOptions::default()
    }));
    let with2 = build.layout().unwrap().total_stages;
    assert_eq!(with2, with0 + 2);
}

#[test]
fn unoptimized_depth_counts_branch_tables() {
    // The Figure 6 handler shape: 7 tables on the longest unoptimized path.
    let src = r#"
        const int TCP = 6;
        const int UDP = 17;
        global nexthops = new Array<<32>>(256);
        global pcts = new Array<<32>>(192);
        global hcts = new Array<<32>>(256);
        memop plus(int cur, int x) { return cur + x; }
        event count_pkt(int dst, int proto);
        handle count_pkt(int dst, int proto) {
            int idx = Array.get(nexthops, dst);
            if (proto != TCP) {
                if (proto == UDP) { idx = idx + 64; }
                else { idx = idx + 128; }
            }
            Array.setm(pcts, idx, plus, 1);
            if (proto == TCP) {
                Array.setm(hcts, dst, plus, 1);
            }
        }
    "#;
    let mut build = Compiler::new().build("fig6.lucid", src);
    assert_eq!(build.handlers().unwrap()[0].unoptimized_depth, 7);
    let stages = build.layout().unwrap().total_stages;
    assert!(stages <= 5, "optimized to {stages}");
}

#[test]
fn stage_counts_are_in_the_papers_range() {
    // Figure 9 reports 5–12 stages across the suite; our model should land
    // every app in 4–12 (SRO is naturally small).
    for app in lucid_apps::all() {
        let art = build_app(&app);
        let c = art.compiled;
        assert!(
            (4..=12).contains(&c.layout.total_stages),
            "{}: {} stages",
            app.key,
            c.layout.total_stages
        );
    }
}

#[test]
fn lucid_shorter_than_generated_register_actions_plus_tables() {
    // Figure 10's observation, adapted to generated P4: Lucid programs are
    // around 10x shorter than P4 overall.
    let mut total_lucid = 0usize;
    let mut total_p4 = 0usize;
    for app in lucid_apps::all() {
        let art = build_app(&app);
        let c = art.compiled;
        total_lucid += app.lucid_loc();
        total_p4 += c.p4.loc.total();
    }
    let ratio = total_p4 as f64 / total_lucid as f64;
    assert!(ratio > 5.0, "aggregate P4/Lucid ratio {ratio:.1} too small");
}
