//! Robustness of the front end: arbitrary input must never panic the
//! lexer, parser, or checker — every failure must be a [`Diagnostic`],
//! because actionable errors are the product (§4, §5).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: lex+parse returns Ok or Err, never panics.
    #[test]
    fn parser_total_on_arbitrary_strings(s in "\\PC{0,200}") {
        let _ = lucid_frontend::parse_program(&s);
    }

    /// Arbitrary ASCII with Lucid-ish characters, denser in punctuation.
    #[test]
    fn parser_total_on_lucid_like_soup(
        s in proptest::collection::vec(
            prop_oneof![
                Just("event "), Just("handle "), Just("global "), Just("memop "),
                Just("if"), Just("("), Just(")"), Just("{"), Just("}"),
                Just("<<"), Just(">>"), Just(";"), Just("="), Just("Array.get"),
                Just("generate "), Just("int "), Just("x"), Just("7"), Just("+"),
                Just("\""), Just("//"), Just("/*"), Just("*/")
            ],
            0..60
        )
    ) {
        let src: String = s.concat();
        let _ = lucid_frontend::parse_program(&src);
    }

    /// Checking any *parsed* program is also total.
    #[test]
    fn checker_total_on_random_mutations(
        idx in 0usize..10,
        cut_at in 0usize..2000,
        insert in "\\PC{0,10}",
    ) {
        let app = lucid_apps::all().swap_remove(idx);
        let mut src = app.source.to_string();
        let pos = cut_at.min(src.len());
        // Mutate on a char boundary.
        let pos = (0..=pos).rev().find(|&p| src.is_char_boundary(p)).unwrap_or(0);
        src.insert_str(pos, &insert);
        if let Ok(program) = lucid_frontend::parse_program(&src) {
            let _ = lucid_check::check(program);
        }
    }

    /// Truncating a valid program anywhere never panics any phase: a build
    /// session driven to P4 either succeeds or reports diagnostics.
    #[test]
    fn pipeline_total_on_truncated_apps(idx in 0usize..10, frac in 0.0f64..1.0) {
        let app = lucid_apps::all().swap_remove(idx);
        let cut = (app.source.len() as f64 * frac) as usize;
        let cut = (0..=cut).rev().find(|&p| app.source.is_char_boundary(p)).unwrap_or(0);
        let src = &app.source[..cut];
        let mut build = lucid_core::Compiler::new().build("truncated.lucid", src);
        if build.p4().is_err() {
            let _ = build.render_diagnostics();
            let _ = build.diagnostics_json();
        }
    }
}

/// Every diagnostic the checker produces on a corpus of broken programs
/// renders cleanly against its source map (no panics from span math).
#[test]
fn diagnostics_always_render() {
    let broken = [
        "global a = new Array<<32>>(0);",
        "event e(int x); handle e(bool x) { }",
        "memop m(int a, int b) { return a * b; }",
        "handle nope(int x) { int y = z; }",
        "event e(int x); handle e(int x) { generate q(); }",
        "global a = new Array<<32>>(4);\nglobal b = new Array<<32>>(4);\nevent e(int i);\nhandle e(int i) { int x = Array.get(b, i); Array.set(a, i, x); }",
        "const int A = 1 / 0;",
        "event e(); handle e() { printf(\"%d %d\"); }",
    ];
    for src in broken {
        let sm = lucid_frontend::SourceMap::new("broken.lucid", src);
        match lucid_frontend::parse_program(src) {
            Err(d) => {
                assert!(!d.render(&sm).is_empty());
            }
            Ok(program) => {
                let err = lucid_check::check(program).expect_err("corpus must be broken");
                assert!(!err.render(&sm).is_empty());
            }
        }
    }
}

/// Unicode in comments and strings survives the whole pipeline.
#[test]
fn unicode_handled_in_comments_and_strings() {
    let src = "// ein Kommentar mit Ümläuten 🚀\n\
               event go(int x);\n\
               handle go(int x) { printf(\"päckchen %d\", x); }\n";
    let prog = lucid_check::parse_and_check(src).expect("checks");
    let mut sim = lucid_interp::Interp::single(&prog);
    sim.schedule(1, 0, "go", &[5]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.output, vec!["päckchen 5"]);
}
