//! Golden-file tests for the bytecode disassembler: the
//! `lucidc sim --dump-bytecode` listing of every bundled Figure-9 app is
//! pinned **per optimization level** under
//! `tests/golden/<key>.o<level>.bc.txt` — o0 is the raw lowering, o1 the
//! peephole/superinstruction pass, o2 adds register allocation. A diff
//! means the compiler's lowering, an optimizer pass, or the listing
//! format changed — regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p lucid-tests --test golden_bytecode`
//! and review the diff like any other code change.
//!
//! `GOLDEN_DIR=<dir>` redirects reads/writes (the `ci.sh` golden-drift
//! guard regenerates into a temp dir and diffs against the checked-in
//! tree, so stale goldens fail fast with a readable diff).

use lucid_core::OptLevel;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    match std::env::var_os("GOLDEN_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden"),
    }
}

const LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

#[test]
fn bundled_app_bytecode_matches_golden_files() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut checked = 0;
    for app in lucid_apps::all() {
        let prog = app.checked();
        for level in LEVELS {
            let listing = lucid_interp::disassemble_opt(&prog, level);
            let path = dir.join(format!("{}.o{}.bc.txt", app.key, level.label()));
            if update {
                std::fs::write(&path, &listing).expect("write golden");
                checked += 1;
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{}: missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
                    app.key,
                    path.display()
                )
            });
            assert_eq!(
                listing,
                want,
                "{} at O{}: bytecode listing drifted from {}; if intended, regenerate \
                 with UPDATE_GOLDEN=1 and review the diff",
                app.key,
                level.label(),
                path.display()
            );
            checked += 1;
        }
    }
    assert_eq!(
        checked, 30,
        "all ten Figure-9 apps must have goldens at all three opt levels"
    );
}

/// The listing is deterministic across compilations (pool numbering,
/// register allocation, and instruction order never depend on hash-map
/// iteration) — at every optimization level.
#[test]
fn disassembly_is_deterministic() {
    for app in lucid_apps::all().into_iter().take(3) {
        let prog = app.checked();
        for level in LEVELS {
            let a = lucid_interp::disassemble_opt(&prog, level);
            let b = lucid_interp::disassemble_opt(&prog, level);
            assert_eq!(a, b, "{} at O{}", app.key, level.label());
        }
    }
}

/// Optimization monotonically helps on the bundled apps: O1 never emits
/// more instructions than O0, O2 never more than O1 and never a larger
/// register frame — and across the whole app suite both passes must
/// actually fire somewhere.
#[test]
fn optimizer_improves_the_bundled_apps() {
    let (mut o1_shrank, mut o2_shrank_regs) = (false, false);
    for app in lucid_apps::all() {
        let prog = app.checked();
        let sizes: Vec<(usize, usize)> = LEVELS
            .iter()
            .map(|&l| {
                let cp = lucid_interp::CompiledProg::compile_opt(&prog, l);
                let instrs: usize = cp.handlers().map(|h| h.instrs().len()).sum();
                let regs: usize = cp
                    .handlers()
                    .map(lucid_interp::bytecode::HandlerCode::nregs)
                    .sum();
                (instrs, regs)
            })
            .collect();
        let [(i0, _), (i1, r1), (i2, r2)] = sizes[..] else {
            unreachable!()
        };
        assert!(i1 <= i0, "{}: peephole grew the code {i0} -> {i1}", app.key);
        assert!(i2 <= i1, "{}: regalloc grew the code {i1} -> {i2}", app.key);
        assert!(
            r2 <= r1,
            "{}: regalloc grew the register frames {r1} -> {r2}",
            app.key
        );
        o1_shrank |= i1 < i0;
        o2_shrank_regs |= r2 < r1;
    }
    assert!(o1_shrank, "peephole fired on no app at all");
    assert!(o2_shrank_regs, "regalloc shrank no frame on any app");
}
