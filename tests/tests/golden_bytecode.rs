//! Golden-file tests for the bytecode disassembler: the
//! `lucidc sim --dump-bytecode` listing of every bundled Figure-9 app is
//! pinned under `tests/golden/<key>.bc.txt`. A diff means the compiler's
//! lowering (or the listing format) changed — regenerate deliberately
//! with `UPDATE_GOLDEN=1 cargo test -p lucid-tests --test golden_bytecode`
//! and review the diff like any other code change.

use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

#[test]
fn bundled_app_bytecode_matches_golden_files() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut checked = 0;
    for app in lucid_apps::all() {
        let listing = lucid_interp::disassemble(&app.checked());
        let path = dir.join(format!("{}.bc.txt", app.key));
        if update {
            std::fs::write(&path, &listing).expect("write golden");
            checked += 1;
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
                app.key,
                path.display()
            )
        });
        assert_eq!(
            listing,
            want,
            "{}: bytecode listing drifted from {}; if intended, regenerate \
             with UPDATE_GOLDEN=1 and review the diff",
            app.key,
            path.display()
        );
        checked += 1;
    }
    assert_eq!(checked, 10, "all ten Figure-9 apps must have goldens");
}

/// The listing is deterministic across compilations (pool numbering,
/// register allocation, and instruction order never depend on hash-map
/// iteration).
#[test]
fn disassembly_is_deterministic() {
    for app in lucid_apps::all().into_iter().take(3) {
        let a = lucid_interp::disassemble(&app.checked());
        let b = lucid_interp::disassemble(&app.checked());
        assert_eq!(a, b, "{}", app.key);
    }
}
