//! Integration tests for the staged `Compiler`/`Build` session API: lazy,
//! cached stage artifacts; multi-error accumulation with structured
//! diagnostics; and backend retargeting without re-parsing.

use lucid_core::{CheckOptions, Compiler, LayoutOptions, PipelineSpec};

const COUNTER: &str = r#"
    global cts = new Array<<32>>(64);
    memop plus(int m, int x) { return m + x; }
    event pkt(int idx);
    handle pkt(int idx) { Array.setm(cts, idx, plus, 1); }
"#;

// --- multi-error accumulation -------------------------------------------

#[test]
fn two_independent_memop_violations_both_reported() {
    let mut build = Compiler::new().build(
        "two.lucid",
        "memop one(int m, int x) { return m * x; }\n\
         memop two(int m, int x) { return x + x; }\n",
    );
    assert!(build.checked().is_err());
    let diags = build.diagnostics();
    assert!(diags.error_count() >= 2, "both memops reported: {diags:?}");
    // Every error is structured: severity, code, span.
    for d in diags
        .items
        .iter()
        .filter(|d| d.level == lucid_core::check::Level::Error)
    {
        assert!(d.code.is_some(), "{d:?}");
        assert!(d.span.is_some(), "{d:?}");
    }
    // Renderable as text (with both offending expressions quoted)...
    let text = build.render_diagnostics();
    assert!(text.contains("m * x") && text.contains("x + x"), "{text}");
    // ...and as JSON with resolved positions.
    let json = build.diagnostics_json();
    assert!(
        json.matches("\"severity\":\"error\"").count() >= 2,
        "{json}"
    );
    assert!(json.contains("\"file\":\"two.lucid\""), "{json}");
}

#[test]
fn memop_and_effect_errors_accumulate_across_phases() {
    // A bad memop AND a disordered handler: both surface in one pass.
    let mut build = Compiler::new().build(
        "multi.lucid",
        "global a = new Array<<32>>(4);\n\
         global b = new Array<<32>>(4);\n\
         memop bad(int m, int x) { return m * x; }\n\
         event go(int i);\n\
         handle go(int i) { int x = Array.get(b, i); Array.set(a, i, x); }\n",
    );
    assert!(build.checked().is_err());
    let diags = build.diagnostics();
    let codes: Vec<&str> = diags.items.iter().filter_map(|d| d.code).collect();
    assert!(
        codes.iter().any(|c| c.starts_with("E03")),
        "memop error present: {codes:?}"
    );
    assert!(
        codes.contains(&"E0401"),
        "ordering error present: {codes:?}"
    );
}

#[test]
fn bad_symbols_accumulate_per_declaration() {
    let mut build = Compiler::new().build(
        "sym.lucid",
        "global z = new Array<<32>>(0);\n\
         const int K = 1 / 0;\n",
    );
    assert!(build.checked().is_err());
    assert!(
        build.diagnostics().error_count() >= 2,
        "{}",
        build.render_diagnostics()
    );
}

// --- caching -------------------------------------------------------------

#[test]
fn second_p4_call_does_not_rerun_any_stage() {
    let mut build = Compiler::new().build("cache.lucid", COUNTER);
    build.p4().unwrap();
    let after_first = *build.stats();
    build.p4().unwrap();
    build.layout().unwrap();
    build.handlers().unwrap();
    build.checked().unwrap();
    build.ast().unwrap();
    assert_eq!(*build.stats(), after_first, "all stages cached");
    assert_eq!(after_first.elaborate_runs, 1);
}

#[test]
fn failed_stage_is_cached_too() {
    let mut build = Compiler::new().build("bad.lucid", "memop bad(int m, int x) { return m * x; }");
    assert!(build.checked().is_err());
    assert!(build.p4().is_err());
    assert!(build.layout().is_err());
    let s = *build.stats();
    assert_eq!(
        s.check_runs, 1,
        "check ran once despite three queries: {s:?}"
    );
    assert_eq!(
        s.elaborate_runs, 0,
        "backend never ran on a broken program: {s:?}"
    );
}

#[test]
fn stages_run_only_when_asked() {
    let mut build = Compiler::new().build("lazy.lucid", COUNTER);
    assert_eq!(
        *build.stats(),
        Default::default(),
        "nothing runs until asked"
    );
    build.checked().unwrap();
    let s = *build.stats();
    assert_eq!((s.parse_runs, s.check_runs), (1, 1));
    assert_eq!((s.elaborate_runs, s.layout_runs, s.p4_runs), (0, 0, 0));
}

// --- retargeting ---------------------------------------------------------

#[test]
fn reconfigure_rebuilds_backend_only() {
    let mut build = Compiler::new().build("ret.lucid", COUNTER);
    let tofino_stages = build.layout().unwrap().total_stages;
    build.reconfigure(&Compiler::new().target(PipelineSpec::idealized_pisa()));
    let pisa_stages = build.layout().unwrap().total_stages;
    assert_eq!(
        tofino_stages, pisa_stages,
        "same stage count on both targets here"
    );
    let s = *build.stats();
    assert_eq!(
        (s.parse_runs, s.check_runs),
        (1, 1),
        "front end reused: {s:?}"
    );
    assert_eq!(s.layout_runs, 2, "layout re-ran for the new target: {s:?}");
}

#[test]
fn no_opt_configuration_is_honored() {
    // The clean-up pass deletes dead tables; disabling it must leave at
    // least as many tables in the IR.
    let src = r#"
        event go(int a);
        event out(int x);
        handle go(int a) {
            int dead = a + 7;
            int live = a + 1;
            generate out(live);
        }
    "#;
    let mut opt = Compiler::new().build("opt.lucid", src);
    let mut raw = Compiler::new().optimize(false).build("raw.lucid", src);
    let n_opt: usize = opt.handlers().unwrap().iter().map(|h| h.tables.len()).sum();
    let n_raw: usize = raw.handlers().unwrap().iter().map(|h| h.tables.len()).sum();
    assert!(
        n_raw > n_opt,
        "dead table survives without optimization: {n_raw} vs {n_opt}"
    );
}

#[test]
fn reconfigure_with_new_check_options_reruns_the_check() {
    let src = "event go(int x);\n\
               fun int unused(int x) { return x; }\n\
               handle go(int x) { generate go(x); }\n";
    let mut build = Compiler::new().build("rc.lucid", src);
    build.checked().unwrap();
    assert!(
        !build.diagnostics().is_empty(),
        "dead-code warning under default options"
    );
    build.reconfigure(&Compiler::new().check_options(CheckOptions {
        warn_dead_code: false,
    }));
    build.checked().unwrap();
    assert!(
        build.diagnostics().is_empty(),
        "new check options applied on reconfigure"
    );
    assert_eq!(build.stats().check_runs, 2, "check re-ran; parse did not");
    assert_eq!(build.stats().parse_runs, 1);
}

#[test]
fn check_options_silence_warnings() {
    let src = "event go(int x);\n\
               fun int unused(int x) { return x; }\n\
               handle go(int x) { generate go(x); }\n";
    let mut warned = Compiler::new().build("w.lucid", src);
    warned.checked().unwrap();
    assert!(
        !warned.diagnostics().is_empty(),
        "dead-code warning expected"
    );
    let mut silent = Compiler::new()
        .check_options(CheckOptions {
            warn_dead_code: false,
        })
        .build("s.lucid", src);
    silent.checked().unwrap();
    assert!(
        silent.diagnostics().is_empty(),
        "{:?}",
        silent.diagnostics()
    );
}

// --- misc ----------------------------------------------------------------

#[test]
fn layout_options_thread_through_the_session() {
    let mut serial = Compiler::new()
        .target(PipelineSpec {
            stages: 256,
            ..PipelineSpec::tofino()
        })
        .layout(LayoutOptions {
            rearrange: false,
            ..LayoutOptions::default()
        })
        .build("fig6.lucid", FIG6);
    let mut rearranged = Compiler::new()
        .target(PipelineSpec {
            stages: 256,
            ..PipelineSpec::tofino()
        })
        .build("fig6.lucid", FIG6);
    assert!(
        serial.layout().unwrap().total_stages > rearranged.layout().unwrap().total_stages,
        "rearrangement saves stages"
    );
}

const FIG6: &str = r#"
    const int NUM_PORTS = 64;
    const int NUM_PORTS_X2 = 128;
    const int TCP = 6;
    const int UDP = 17;
    global nexthops = new Array<<32>>(256);
    global pcts = new Array<<32>>(192);
    global hcts = new Array<<32>>(256);
    memop plus(int cur, int x) { return cur + x; }
    event count_pkt(int dst, int proto);
    handle count_pkt(int dst, int proto) {
        int idx = Array.get(nexthops, dst);
        if (proto != TCP) {
            if (proto == UDP) { idx = idx + NUM_PORTS; }
            else { idx = idx + NUM_PORTS_X2; }
        }
        Array.setm(pcts, idx, plus, 1);
        if (proto == TCP) {
            Array.setm(hcts, dst, plus, 1);
        }
    }
"#;
