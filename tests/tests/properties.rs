//! Property-based tests across the whole pipeline: the §5 ordering
//! discipline, memop validation, interpreter determinism, and the
//! parser/pretty-printer round trip — on both generated programs and the
//! bundled application sources.

use lucid_check::parse_and_check;
use lucid_interp::{CompiledProg, Interp, OptLevel};
use proptest::prelude::*;

/// Build a program with `n_arrays` globals and one handler whose accesses
/// follow `order` (indices into the globals). Well-ordered iff `order` is
/// non-strictly increasing... strictly increasing, since each array may be
/// touched once per pass.
fn program_with_access_order(n_arrays: usize, order: &[usize]) -> String {
    let mut src = String::new();
    for i in 0..n_arrays {
        src.push_str(&format!("global g{i} = new Array<<32>>(16);\n"));
    }
    src.push_str("memop plus(int m, int x) { return m + x; }\n");
    src.push_str("event go(int idx);\nhandle go(int idx) {\n");
    for &a in order {
        src.push_str(&format!("    Array.setm(g{a}, idx, plus, 1);\n"));
    }
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strictly increasing access sequence checks, compiles within a
    /// (tall enough) pipeline, and runs.
    #[test]
    fn ordered_programs_always_accepted(
        mask in proptest::collection::vec(any::<bool>(), 8)
    ) {
        let order: Vec<usize> =
            mask.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        let src = program_with_access_order(8, &order);
        // One session drives check → layout → P4 (8 arrays + dispatcher
        // fits the 12-stage Tofino).
        let mut build = lucid_core::Compiler::new().build("ordered.lucid", &src);
        prop_assert!(build.p4().is_ok(), "{}", build.render_diagnostics());
        let prog = build.checked().expect("checks").clone();
        // And runs: one event touches each selected array once.
        let mut sim = Interp::single(&prog);
        sim.schedule(1, 0, "go", &[3]).unwrap();
        sim.run_to_quiescence().unwrap();
        for &a in &order {
            prop_assert_eq!(sim.array(1, &format!("g{a}"))[3], 1);
        }
    }

    /// Any access sequence with an inversion (later-declared array before
    /// an earlier one, or the same array twice) is rejected by the type
    /// system — the §5 guarantee.
    #[test]
    fn disordered_programs_always_rejected(
        a in 0usize..6, b in 0usize..6
    ) {
        prop_assume!(a >= b);
        let src = program_with_access_order(6, &[a, b]);
        let err = parse_and_check(&src).expect_err("inversion must be rejected");
        prop_assert!(
            err.items.iter().any(|d| d.message.contains("out of declaration order")),
            "{err}"
        );
    }

    /// The interpreter is deterministic: the same schedule produces the
    /// same trace and the same final state, run after run.
    #[test]
    fn interpreter_is_deterministic(
        packets in proptest::collection::vec((0u64..16, 0u64..10_000), 1..50)
    ) {
        let src = program_with_access_order(4, &[0, 1, 2, 3]);
        let prog = parse_and_check(&src).unwrap();
        let run = || {
            let mut sim = Interp::single(&prog);
            for (idx, t) in &packets {
                sim.schedule(1, *t, "go", &[*idx]).unwrap();
            }
            sim.run_to_quiescence().unwrap();
            (sim.trace.clone(), sim.array(1, "g0").to_vec())
        };
        prop_assert_eq!(run(), run());
    }

    /// Counter semantics under arbitrary workloads: the data plane's
    /// per-index counters match a host-side reference computation.
    #[test]
    fn counter_agrees_with_reference(
        packets in proptest::collection::vec(0u64..16, 1..200)
    ) {
        let src = program_with_access_order(1, &[0]);
        let prog = parse_and_check(&src).unwrap();
        let mut sim = Interp::single(&prog);
        let mut reference = [0u64; 16];
        for (i, idx) in packets.iter().enumerate() {
            sim.schedule(1, i as u64 * 10, "go", &[*idx]).unwrap();
            reference[*idx as usize] += 1;
        }
        sim.run_to_quiescence().unwrap();
        prop_assert_eq!(sim.array(1, "g0"), &reference[..]);
    }

    /// Valid single-op memops are always accepted, and their evaluation
    /// matches direct arithmetic.
    #[test]
    fn valid_memops_accepted_and_correct(
        op in prop_oneof![Just("+"), Just("-"), Just("&"), Just("|"), Just("^")],
        mem in any::<u32>(),
        arg in any::<u32>(),
    ) {
        let src = format!("memop f(int m, int x) {{ return m {op} x; }}");
        let program = lucid_frontend::parse_program(&src).unwrap();
        let info = lucid_check::ProgramInfo::build(&program).unwrap();
        let irs = lucid_check::validate_memops(&program, &info).expect("valid memop");
        let got = lucid_check::eval_memop(&irs[0], mem as u64, arg as u64, 32);
        let want = match op {
            "+" => mem.wrapping_add(arg),
            "-" => mem.wrapping_sub(arg),
            "&" => mem & arg,
            "|" => mem | arg,
            "^" => mem ^ arg,
            _ => unreachable!(),
        } as u64;
        prop_assert_eq!(got, want);
    }

    /// Conditional memops take the right branch for every input.
    #[test]
    fn conditional_memops_branch_correctly(
        cmp in prop_oneof![Just("<"), Just(">"), Just("=="), Just("!="), Just("<="), Just(">=")],
        mem in any::<u16>(),
        arg in any::<u16>(),
    ) {
        let src = format!(
            "memop f(int m, int x) {{ if (m {cmp} x) {{ return x; }} else {{ return m; }} }}"
        );
        let program = lucid_frontend::parse_program(&src).unwrap();
        let info = lucid_check::ProgramInfo::build(&program).unwrap();
        let irs = lucid_check::validate_memops(&program, &info).expect("valid memop");
        let got = lucid_check::eval_memop(&irs[0], mem as u64, arg as u64, 32);
        let taken = match cmp {
            "<" => (mem as u64) < arg as u64,
            ">" => (mem as u64) > arg as u64,
            "==" => mem == arg,
            "!=" => mem != arg,
            "<=" => mem <= arg,
            ">=" => mem >= arg,
            _ => unreachable!(),
        };
        prop_assert_eq!(got, if taken { arg as u64 } else { mem as u64 });
    }

    /// Arithmetic in the interpreter masks exactly to the declared width.
    #[test]
    fn width_masking_is_exact(w in 1u32..=32, v in any::<u64>()) {
        let src = format!(
            "global out = new Array<<{w}>>(1);\n\
             event go(int<<{w}>> x);\n\
             handle go(int<<{w}>> x) {{ Array.set(out, 0, x + 1); }}\n"
        );
        let prog = parse_and_check(&src).unwrap();
        let mut sim = Interp::single(&prog);
        sim.schedule(1, 0, "go", &[v]).unwrap();
        sim.run_to_quiescence().unwrap();
        let masked_in = lucid_check::mask(v, w);
        prop_assert_eq!(sim.array(1, "out")[0], lucid_check::mask(masked_in + 1, w));
    }

    /// Every generated program compiles to *verified* bytecode at all
    /// three optimization levels: init-before-use, width consistency,
    /// jump sanity, frame bounds, and check coverage all hold, and every
    /// elided bounds check carries a proof the verifier re-derives.
    /// Varying the array size exercises both outcomes of the elision
    /// analysis (a `hash<<w>>`-bounded index elides against a large
    /// array, survives against a small one).
    #[test]
    fn generated_programs_verify_at_every_level(
        mask in proptest::collection::vec(any::<bool>(), 8),
        size_pow in 1u32..=7,
    ) {
        let order: Vec<usize> =
            mask.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        let mut src = String::new();
        let size = 1u64 << size_pow;
        for i in 0..8 {
            src.push_str(&format!("global g{i} = new Array<<32>>({size});\n"));
        }
        src.push_str("memop plus(int m, int x) { return m + x; }\n");
        src.push_str("event go(int seed);\nhandle go(int seed) {\n");
        src.push_str("    auto h = hash<<4>>(3, seed);\n");
        src.push_str("    int idx = (int<<32>>) h;\n");
        for &a in &order {
            src.push_str(&format!("    Array.setm(g{a}, idx, plus, 1);\n"));
        }
        src.push_str("}\n");
        let prog = parse_and_check(&src).expect("generated program checks");
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            if let Err(vs) = CompiledProg::compile_verified(&prog, level) {
                prop_assert!(false, "O{}: {vs:?}", level.label());
            }
        }
    }
}

/// The pretty printer is a fixpoint on every bundled application.
#[test]
fn pretty_printer_roundtrips_all_apps() {
    for app in lucid_apps::all() {
        let p1 = lucid_frontend::parse_program(app.source)
            .unwrap_or_else(|e| panic!("{}: {e}", app.key));
        let printed = lucid_frontend::pretty::program(&p1);
        let p2 = lucid_frontend::parse_program(&printed)
            .unwrap_or_else(|e| panic!("{} reparse: {e}\n{printed}", app.key));
        assert_eq!(
            lucid_frontend::pretty::program(&p2),
            printed,
            "{}: pretty is not a fixpoint",
            app.key
        );
    }
}

/// Compilation is deterministic: identical input yields identical layout
/// and identical P4 text, across independent build sessions.
#[test]
fn compilation_is_deterministic() {
    for app in lucid_apps::all() {
        let compiler = lucid_core::Compiler::new();
        let mut a = compiler.build(app.key, app.source);
        let mut b = compiler.build(app.key, app.source);
        assert_eq!(
            a.p4().unwrap().source,
            b.p4().unwrap().source,
            "{}",
            app.key
        );
        assert_eq!(
            a.layout().unwrap().total_stages,
            b.layout().unwrap().total_stages
        );
    }
}
