//! Integration tests of the scenario-driven simulation subsystem: the
//! loader's structured diagnostics, the checked-in `*.sim.json` suite
//! (the same files CI's sim gate runs), and sequential/sharded engine
//! determinism on an 8-switch mesh.

use lucid_core::{run_scenario, Compiler, Engine, ExecMode, Scenario, ScenarioError};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..")
}

fn checked(src: &str) -> lucid_core::CheckedProgram {
    lucid_core::check::parse_and_check(src).expect("program checks")
}

// ------------------------------------------------------ loader diagnostics

#[test]
fn malformed_json_carries_line_and_column() {
    let err = Scenario::from_json("{\n \"name\": \"x\",\n \"net\": [oops]\n}").unwrap_err();
    let ScenarioError::Json { line, .. } = err else {
        panic!("want a Json error, got {err:?}");
    };
    assert_eq!(line, 3);
    assert!(err.to_string().contains("line 3"), "{err}");
    assert!(err.to_json().contains("\"kind\":\"json\""));
}

#[test]
fn unknown_event_name_names_the_field_path() {
    let prog = checked("event pkt(int x); handle pkt(int x) { int y = x; }");
    let sc = Scenario::from_json(
        r#"{"events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [1]},
                       {"time_ns": 1, "switch": 1, "event": "pktt", "args": [1]}]}"#,
    )
    .unwrap();
    let err = sc.validate(&prog).unwrap_err();
    let ScenarioError::Validate { path, msg } = &err else {
        panic!("want Validate, got {err:?}");
    };
    assert_eq!(path, "$.events[1].event");
    assert!(msg.contains("pktt"), "{msg}");
    assert!(err.to_json().contains("\"kind\":\"validate\""));
}

#[test]
fn out_of_range_switch_ids_are_rejected_everywhere() {
    let prog = checked(
        "global a = new Array<<32>>(4); event pkt(int x); handle pkt(int x) { Array.set(a, 0, x); }",
    );
    for (body, want_path) in [
        (
            r#"{"net": {"switches": 2},
                "events": [{"time_ns": 0, "switch": 3, "event": "pkt", "args": [1]}]}"#,
            "$.events[0].switch",
        ),
        (
            r#"{"net": {"switches": 2},
                "init": [{"switch": 9, "array": "a", "index": 0, "value": 1}]}"#,
            "$.init[0].switch",
        ),
        (
            r#"{"net": {"switches": 2},
                "failures": [{"time_ns": 5, "switch": 4, "action": "fail"}]}"#,
            "$.failures[0].switch",
        ),
        (
            r#"{"net": {"switches": 2},
                "expect": {"arrays": [{"switch": 7, "array": "a", "index": 0, "value": 0}]}}"#,
            "$.expect.arrays[0].switch",
        ),
    ] {
        let sc = Scenario::from_json(body).unwrap();
        let err = sc.validate(&prog).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Validate { path, .. } if path == want_path),
            "body {body} gave {err:?}"
        );
    }
}

#[test]
fn expectation_mismatches_are_structured_and_rendered() {
    let prog = checked(
        "global a = new Array<<32>>(4); memop plus(int m, int x) { return m + x; } \
         event pkt(int i); handle pkt(int i) { Array.setm(a, i, plus, 1); }",
    );
    let sc = Scenario::from_json(
        r#"{"name": "mm",
            "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [2]}],
            "expect": {"handled": 5,
                       "arrays": [{"switch": 1, "array": "a", "values": [0, 0, 2, 0]}]}}"#,
    )
    .unwrap();
    let report = run_scenario(&prog, &sc, None, None).unwrap();
    assert!(!report.passed());
    // One count mismatch + one cell mismatch, each structured.
    assert_eq!(report.mismatches.len(), 2, "{:?}", report.mismatches);
    let rendered = report.render();
    assert!(
        rendered.contains("handled: expected 5, got 1"),
        "{rendered}"
    );
    assert!(rendered.contains("`a[2]`: expected 2, got 1"), "{rendered}");
    let json = report.to_json();
    assert!(json.contains("\"kind\":\"count\""), "{json}");
    assert!(json.contains("\"kind\":\"array\""), "{json}");
    assert!(json.contains("\"ok\":false"), "{json}");
}

// ------------------------------------------------- metrics expect blocks

#[test]
fn metrics_block_parses_and_validates() {
    let prog = checked("event pkt(int x); handle pkt(int x) { int y = x; }");
    let sc = Scenario::from_json(
        r#"{"net": {"switches": 2},
            "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [1]}],
            "metrics": {"expect": [
                {"event": "pkt", "switch": 1, "metric": "count", "op": "==", "value": 1},
                {"event": "pkt", "metric": "latency_p99_ns", "op": "<=", "value": 5000}
            ]}}"#,
    )
    .unwrap();
    assert_eq!(sc.metrics.len(), 2);
    sc.validate(&prog).unwrap();

    // Unknown event / out-of-range switch inside the block are caught at
    // validation with the field's JSON path.
    for (body, want_path) in [
        (
            r#"{"metrics": {"expect": [{"event": "nope", "metric": "count", "op": "==", "value": 0}]}}"#,
            "$.metrics.expect[0].event",
        ),
        (
            r#"{"net": {"switches": 2},
                "metrics": {"expect": [{"event": "pkt", "switch": 5, "metric": "count", "op": "==", "value": 0}]}}"#,
            "$.metrics.expect[0].switch",
        ),
    ] {
        let err = Scenario::from_json(body)
            .unwrap()
            .validate(&prog)
            .unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Validate { path, .. } if path == want_path),
            "body {body} gave {err:?}"
        );
    }
}

#[test]
fn unknown_metric_and_op_are_schema_errors() {
    let err = Scenario::from_json(
        r#"{"metrics": {"expect": [{"event": "pkt", "metric": "latency_p42_ns", "op": "==", "value": 0}]}}"#,
    )
    .unwrap_err();
    let msg = err.to_string();
    // The error lists the valid selector names so a typo is self-serviceable.
    assert!(msg.contains("latency_p42_ns"), "{msg}");
    assert!(msg.contains("latency_p99_ns"), "{msg}");

    let err = Scenario::from_json(
        r#"{"metrics": {"expect": [{"event": "pkt", "metric": "count", "op": "~=", "value": 0}]}}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("~="), "{err}");
}

#[test]
fn metric_expectation_failures_are_structured() {
    let prog = checked("event pkt(int x); handle pkt(int x) { int y = x; }");
    let sc = Scenario::from_json(
        r#"{"name": "mfail",
            "events": [{"time_ns": 0, "switch": 1, "event": "pkt", "args": [1]}],
            "metrics": {"expect": [
                {"event": "pkt", "switch": 1, "metric": "count", "op": "==", "value": 7},
                {"event": "pkt", "metric": "latency_max_ns", "op": ">", "value": 100}
            ]}}"#,
    )
    .unwrap();
    let report = run_scenario(&prog, &sc, None, None).unwrap();
    assert!(!report.passed());
    assert_eq!(report.mismatches.len(), 2, "{:?}", report.mismatches);
    let rendered = report.render();
    assert!(
        rendered.contains("`pkt@1` count: expected == 7, got 1"),
        "{rendered}"
    );
    let json = report.to_json();
    assert!(json.contains("\"kind\":\"metric\""), "{json}");
    assert!(json.contains("\"metric\":\"latency_max_ns\""), "{json}");
}

/// Metric assertions describe the authored workload, so — like `expect`
/// — they are skipped when `--seed`/`--events` replace that workload.
#[test]
fn metric_expectations_skip_when_workload_overridden() {
    let prog = checked("event pkt(int x); handle pkt(int x) { int y = x; }");
    let sc = Scenario::from_json(
        r#"{"name": "mskip",
            "generators": [{"name": "g", "event": "pkt", "switch": 1, "rate_eps": 1000000,
                            "count": 10, "args": [3]}],
            "metrics": {"expect": [{"event": "pkt", "metric": "count", "op": "==", "value": 10}]}}"#,
    )
    .unwrap();
    let base = run_scenario(&prog, &sc, None, None).unwrap();
    assert!(base.passed(), "{:?}", base.mismatches);

    let overrides = lucid_core::SimOptions {
        events: Some(25),
        ..Default::default()
    };
    let rescaled = lucid_core::run_scenario_with(&prog, &sc, &overrides).unwrap();
    // count is now 25, contradicting the block — but the block is inert.
    assert!(rescaled.passed(), "{:?}", rescaled.mismatches);
    assert_eq!(rescaled.stats.processed, 25);
}

// ----------------------------------------------------- checked-in suite

/// Every `crates/apps/scenarios/*.sim.json` must load, validate against
/// its app, and pass — the in-tree mirror of CI's sim gate.
#[test]
fn bundled_scenarios_all_pass() {
    let dir = repo_root().join("crates/apps/scenarios");
    let mut ran = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios dir exists") {
        let path = entry.unwrap().path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(base) = name.strip_suffix(".sim.json") else {
            continue;
        };
        // Same pairing rule as ci.sh: `<app>[.variant].sim.json`.
        let app = base.split('.').next().unwrap();
        let prog_path = repo_root().join(format!("crates/apps/programs/{app}.lucid"));
        let src = std::fs::read_to_string(&prog_path)
            .unwrap_or_else(|e| panic!("{app}: no program for scenario {name}: {e}"));
        let sc_text = std::fs::read_to_string(&path).unwrap();
        let sc =
            Scenario::from_json(&sc_text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        let mut build = Compiler::new().build(app, &src);
        let report = build
            .interp(&sc, &lucid_core::SimOptions::default())
            .unwrap_or_else(|e| panic!("{name} failed to run: {e}"));
        assert!(
            report.passed(),
            "{name} has mismatches: {:?}",
            report.mismatches
        );
        ran += 1;
    }
    assert!(
        ran >= 4,
        "expected at least four bundled scenarios, ran {ran}"
    );
}

/// Every bundled scenario must be engine-independent: identical final
/// state digest and statistics under the sequential reference and the
/// sharded worker-pool engine.
#[test]
fn bundled_scenarios_are_engine_deterministic() {
    let dir = repo_root().join("crates/apps/scenarios");
    for entry in std::fs::read_dir(&dir).expect("scenarios dir exists") {
        let path = entry.unwrap().path();
        let Some(app) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_suffix(".sim.json"))
            .and_then(|n| n.split('.').next())
        else {
            continue;
        };
        let src =
            std::fs::read_to_string(repo_root().join(format!("crates/apps/programs/{app}.lucid")))
                .unwrap();
        let prog = checked(&src);
        let sc = Scenario::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let seq = run_scenario(&prog, &sc, Some(Engine::Sequential), None).unwrap();
        // Full engine x exec matrix against the sequential AST reference.
        for engine in [
            Engine::Sequential,
            Engine::Sharded {
                workers: 3,
                epoch_ns: 0,
            },
        ] {
            for exec in [ExecMode::Ast, ExecMode::Bytecode] {
                let got = run_scenario(&prog, &sc, Some(engine), Some(exec)).unwrap();
                let combo = format!("{app} [{}/{}]", engine.label(), exec.label());
                assert_eq!(seq.state_digest, got.state_digest, "{combo}: state differs");
                assert_eq!(seq.stats, got.stats, "{combo}: statistics differ");
                assert_eq!(
                    seq.metrics.digest(),
                    got.metrics.digest(),
                    "{combo}: latency metrics differ"
                );
            }
        }
    }
}

// -------------------------------------------------- 8-switch determinism

/// The satellite determinism gate: a cross-traffic-heavy 8-switch mesh
/// where the sharded engine must reproduce the sequential engine's final
/// array state exactly.
#[test]
fn sharded_equals_sequential_on_eight_switch_mesh() {
    let prog = checked(
        r#"
        global load = new Array<<32>>(256);
        global relay = new Array<<32>>(256);
        memop plus(int m, int x) { return m + x; }
        event pkt(int flow, int hop);
        handle pkt(int flow, int hop) {
            auto i = hash<<8>>(1, flow, hop);
            int n = Array.update(load, i, plus, 1, plus, 1);
            if (hop > 0) {
                auto next = hash<<3>>(2, flow, n);
                Array.setm(relay, i, plus, hop);
                generate Event.locate(pkt(flow + n, hop - 1), next + 1);
            }
        }
        "#,
    );
    let mut events = String::new();
    for s in 1..=8u64 {
        for k in 0..12u64 {
            events.push_str(&format!(
                "{}{{\"time_ns\": {}, \"switch\": {s}, \"event\": \"pkt\", \"args\": [{}, 6]}}",
                if events.is_empty() { "" } else { "," },
                k * 700,
                s * 100 + k
            ));
        }
    }
    let sc = Scenario::from_json(&format!(
        r#"{{"name": "mesh8", "net": {{"switches": 8}}, "events": [{events}]}}"#
    ))
    .unwrap();

    let seq = run_scenario(&prog, &sc, Some(Engine::Sequential), None).unwrap();
    for workers in [2, 4, 8] {
        for exec in [ExecMode::Ast, ExecMode::Bytecode] {
            let sh = run_scenario(
                &prog,
                &sc,
                Some(Engine::Sharded {
                    workers,
                    epoch_ns: 0,
                }),
                Some(exec),
            )
            .unwrap();
            assert_eq!(
                seq.state_digest,
                sh.state_digest,
                "{workers} workers ({}): final array state differs from sequential",
                exec.label()
            );
            assert_eq!(seq.stats, sh.stats, "{workers} workers: stats differ");
            assert_eq!(
                seq.metrics.digest(),
                sh.metrics.digest(),
                "{workers} workers ({}): metric histograms differ from sequential",
                exec.label()
            );
        }
    }
    // The workload really is distributed and cross-switch.
    assert!(seq.stats.sent_remote > 200, "{:?}", seq.stats);
    assert_eq!(seq.stats.processed, 8 * 12 * 7);
    // And the metrics saw real multi-hop traffic: generated `pkt` events
    // cross wire hops, so tail latency and queue residency are nonzero.
    let overall = seq.metrics.overall().expect("metrics recorded");
    assert!(overall.dispatch.max() >= 1_000, "{:?}", overall.dispatch);
    assert!(overall.residency.max() >= 1_000, "{:?}", overall.residency);
    // Every dispatch counts, but only *derived* (handler-generated)
    // events record a dispatch-latency sample — an injection is its own
    // root. 96 roots, six generated hops each.
    assert_eq!(overall.count, seq.stats.processed);
    assert_eq!(overall.residency.count(), seq.stats.processed);
    assert_eq!(overall.dispatch.count(), 8 * 12 * 6);
}
