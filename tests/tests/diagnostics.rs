//! Tests for the compiler's *error experience* — the paper's central
//! usability claim (§4, §5): failures surface early, on untransformed
//! source, with messages that point at the construct at fault and say how
//! to fix it. These tests pin the wording and the source positions.

use lucid_frontend::SourceMap;

fn check_err(src: &str) -> (String, SourceMap) {
    let sm = SourceMap::new("test.lucid", src);
    let program = lucid_frontend::parse_program(src).expect("parses");
    let err = lucid_check::check(program).expect_err("must be rejected");
    (err.render(&sm), sm)
}

// --- §5: ordered data access ------------------------------------------

#[test]
fn figure5_error_names_both_arrays_and_the_fix() {
    let src = r#"const int SIZE = 16;
global arr1 = new Array<<32>>(SIZE);
global arr2 = new Array<<32>>(SIZE);
event setArr1(int idx, int data);
handle setArr1(int idx, int data) {
    int x = Array.get(arr2, idx);
    Array.set(arr1, idx, x);
}
"#;
    let (msg, _) = check_err(src);
    // Which array, at which line, conflicting with which earlier access,
    // and the remediation — all present.
    assert!(
        msg.contains("`arr1` is accessed out of declaration order"),
        "{msg}"
    );
    assert!(
        msg.contains("test.lucid:7"),
        "points at the offending line: {msg}"
    );
    assert!(msg.contains("arr2"), "names the conflicting access: {msg}");
    assert!(
        msg.contains("reorder the `global` declarations"),
        "suggests the fix: {msg}"
    );
    assert!(
        msg.contains("Array.set(arr1, idx, x);"),
        "quotes the source line: {msg}"
    );
}

#[test]
fn double_access_error_mentions_second_pass() {
    let src = r#"global a = new Array<<32>>(4);
event go(int i);
handle go(int i) {
    Array.set(a, 0, i);
    Array.set(a, 1, i);
}
"#;
    let (msg, _) = check_err(src);
    assert!(
        msg.contains("split this computation into a second"),
        "{msg}"
    );
}

// --- §4.2: memop rejection ---------------------------------------------

#[test]
fn memop_multiply_error_points_at_expression() {
    let src = "memop bad(int m, int x) { return m * x; }\n";
    let sm = SourceMap::new("m.lucid", src);
    let program = lucid_frontend::parse_program(src).unwrap();
    let err = lucid_check::check(program).unwrap_err();
    let msg = err.render(&sm);
    assert!(msg.contains("not supported inside a memop"), "{msg}");
    assert!(
        msg.contains("`+`, `-`, `&`, `|`, `^`"),
        "lists what *is* allowed: {msg}"
    );
    assert!(msg.contains("m * x"), "quotes the expression: {msg}");
}

#[test]
fn memop_compound_condition_is_a_valid_complex_memop() {
    // The base paper rejects compound conditions outright; this
    // implementation also ships Appendix C's proposed extension, so the
    // declaration alone is legal (the restriction moves to Array.update —
    // see `complex_memop_rejected_in_update_but_fine_in_set`).
    let src = "memop cc(int m, int x) { if (m == 1 || m == 2) { return m; } else { return x; } }\n";
    let prog = lucid_check::parse_and_check(src).expect("complex memop accepted");
    assert!(prog.memops["cc"].is_complex());
}

#[test]
fn memop_foreign_variable_suggests_second_argument() {
    let (msg, _) = check_err("memop f(int m, int x) { return m + other; }\n");
    assert!(msg.contains("`other`"), "{msg}");
    assert!(msg.contains("second argument"), "{msg}");
}

#[test]
fn memop_reuse_error_cites_rule() {
    let (msg, _) = check_err(
        "memop f(int m, int x) { if (m > x) { return m + x; } else { return x + x; } }\n",
    );
    assert!(msg.contains("more than once"), "{msg}");
}

#[test]
fn complex_memop_rejected_in_update_but_fine_in_set() {
    // Appendix C extension: compound-condition memops exist, but cannot be
    // one of Array.update's two memops.
    let base = "global a = new Array<<32>>(4);\n\
         memop inband(int m, int x) { if (m >= 1 && m <= 9) { return x; } else { return m; } }\n\
         memop read(int m, int x) { return m; }\n\
         event go(int i);\n";
    let ok = format!("{base}handle go(int i) {{ Array.setm(a, i, inband, 7); }}\n");
    lucid_check::parse_and_check(&ok).expect("complex memop valid in Array.set");
    let bad =
        format!("{base}handle go(int i) {{ int v = Array.update(a, i, read, 0, inband, 7); }}\n");
    let err = lucid_check::parse_and_check(&bad).unwrap_err();
    let d = &err.items[0];
    assert!(d.message.contains("compound condition"), "{d}");
    assert!(
        d.notes.iter().any(|(n, _)| n.contains("predicate slots")),
        "{d:?}"
    );
}

// --- recursion & events --------------------------------------------------

#[test]
fn recursion_error_teaches_generate() {
    let (msg, _) = check_err(
        "fun int f(int x) { return f(x); }\nevent go(int x);\nhandle go(int x) { int y = f(x); }\n",
    );
    assert!(msg.contains("recursive call"), "{msg}");
    assert!(
        msg.contains("generate"),
        "points to the event-based idiom: {msg}"
    );
}

#[test]
fn memop_call_error_teaches_array_methods() {
    let (msg, _) = check_err(
        "memop plus(int m, int x) { return m + x; }\nevent go(int x);\nhandle go(int x) { int y = plus(x, x); }\n",
    );
    assert!(msg.contains("cannot be called directly"), "{msg}");
    assert!(msg.contains("Array.get/set/update"), "{msg}");
}

#[test]
fn handler_without_event_suggests_declaration() {
    let (msg, _) = check_err("handle orphan(int x) { int y = x; }\n");
    assert!(msg.contains("no matching `event`"), "{msg}");
    assert!(msg.contains("event orphan(..);"), "{msg}");
}

// --- parse-level ----------------------------------------------------------

#[test]
fn unknown_builtin_lists_modules() {
    let err = lucid_frontend::parse_program("handle h(int x) { Array.pop(a); }").unwrap_err();
    let sm = SourceMap::new("p.lucid", "handle h(int x) { Array.pop(a); }");
    let msg = err.render(&sm);
    assert!(msg.contains("Array.{get,getm,set,setm,update}"), "{msg}");
}

#[test]
fn parse_error_has_caret_under_token() {
    let src = "const int A = ;\n";
    let err = lucid_frontend::parse_program(src).unwrap_err();
    let msg = err.render(&SourceMap::new("p.lucid", src));
    assert!(msg.contains("expected an expression"), "{msg}");
    let caret_line = msg.lines().last().unwrap();
    assert!(
        caret_line.trim_end().ends_with('^'),
        "caret under the token: {msg}"
    );
}

// --- backend-level --------------------------------------------------------

#[test]
fn backend_rejects_variable_multiplication_with_advice() {
    let mut build = lucid_core::Compiler::new().build(
        "b.lucid",
        "event go(int x, int y);\nevent out(int x);\nhandle go(int x, int y) { generate out(x * y); }\n",
    );
    assert!(build.p4().is_err());
    let msg = build.render_diagnostics();
    assert!(msg.contains("match-action ALU"), "{msg}");
    assert!(msg.contains("restructure"), "{msg}");
    assert!(
        msg.contains("[E0600]"),
        "backend errors carry the phase code: {msg}"
    );
}

#[test]
fn backend_reports_pipeline_exhaustion_with_stage_count() {
    // A 14-deep dependence chain cannot fit 12 stages.
    let mut body = String::from("int x0 = a + 1;\n");
    for i in 1..14 {
        body.push_str(&format!("int x{i} = x{} + 1;\n", i - 1));
    }
    let src = format!(
        "event go(int a);\nevent out(int x);\nhandle go(int a) {{ {body} generate out(x13); }}\n"
    );
    let mut build = lucid_core::Compiler::new().build("deep.lucid", &src);
    assert!(build.layout().is_err());
    let msg = build.render_diagnostics();
    assert!(msg.contains("stages are exhausted"), "{msg}");
    assert!(
        msg.contains("[E0700]"),
        "layout errors carry the phase code: {msg}"
    );
}

// --- contrast: the P4 experience the paper describes ----------------------

#[test]
fn all_errors_fire_before_any_backend_lowering() {
    // The point of §4/§5: every rejection above happens in the front/middle
    // end with spans — never a late, span-free backend failure. Verify that
    // checking a valid program then compiling it cannot produce a spanless
    // error for these canonical mistakes.
    let cases = [
        "memop bad(int m, int x) { return m * x; }",
        "global a = new Array<<32>>(2);\nglobal b = new Array<<32>>(2);\n\
         event e(int i);\nhandle e(int i) { int x = Array.get(b, i); Array.set(a, i, x); }",
    ];
    for src in cases {
        let program = lucid_frontend::parse_program(src).expect("parses");
        let err = lucid_check::check(program).expect_err("rejected early");
        assert!(
            err.items.iter().all(|d| d.span.is_some()),
            "every early error carries a source span: {err}"
        );
    }
}
