//! End-to-end behavioral tests for the Figure 9 applications, run in the
//! event-driven interpreter. Each test drives a realistic scenario — the
//! same ones the paper's prose describes — and asserts on persistent
//! state and on the exported-event trace.

use lucid_check::CheckedProgram;
use lucid_interp::{Interp, NetConfig};

fn app(key: &str) -> CheckedProgram {
    lucid_apps::by_key(key)
        .unwrap_or_else(|| panic!("app {key}"))
        .checked()
}

fn count(sim: &Interp, event: &str) -> usize {
    sim.trace.iter().filter(|h| &*h.event == event).count()
}

// ---------------------------------------------------------------- RR ----

#[test]
fn rr_delivers_via_healthy_next_hop() {
    let prog = app("rr");
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));
    sim.schedule(1, 0, "init_route", &[5, 2, 2]).unwrap();
    for s in [1, 2, 3] {
        sim.schedule(s, 1_000, "ping_all", &[]).unwrap();
    }
    sim.schedule(1, 400_000, "pkt", &[5]).unwrap();
    sim.run(200_000, 450_000).unwrap();
    let d = sim
        .trace
        .iter()
        .rev()
        .find(|h| &*h.event == "deliver")
        .expect("delivered");
    assert_eq!(d.args, vec![5, 2], "delivered toward next hop 2");
}

#[test]
fn rr_reroutes_around_failed_switch() {
    let prog = app("rr");
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));
    sim.schedule(1, 0, "init_route", &[5, 2, 2]).unwrap();
    sim.schedule(2, 0, "init_route", &[5, 1, 9]).unwrap();
    sim.schedule(3, 0, "init_route", &[5, 1, 9]).unwrap();
    for s in [1, 2, 3] {
        sim.schedule(s, 1_000, "ping_all", &[]).unwrap();
    }
    sim.run(400_000, 500_000).unwrap();
    sim.fail_switch(2);
    // Wait for staleness (500 µs), then a packet triggers withdrawal +
    // requery; switch 3's reply re-points the route.
    sim.schedule(1, 1_300_000, "pkt", &[5]).unwrap();
    sim.run(400_000, 1_400_000).unwrap();
    sim.clear_trace();
    sim.schedule(1, 1_500_000, "pkt", &[5]).unwrap();
    sim.run(400_000, 1_600_000).unwrap();
    let d = sim
        .trace
        .iter()
        .rev()
        .find(|h| &*h.event == "deliver")
        .expect("delivered");
    assert_eq!(d.args[1], 3, "rerouted via switch 3");
}

#[test]
fn rr_route_reply_only_improves() {
    let prog = app("rr");
    let mut sim = Interp::new(&prog, NetConfig::mesh(2));
    sim.schedule(1, 0, "init_route", &[7, 3, 2]).unwrap();
    // A worse advertisement (len 5 + 1 hop) must not replace len 3.
    sim.schedule(1, 10_000, "route_reply", &[9, 7, 5]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.array(1, "pathlen")[7], 3);
    assert_eq!(sim.array(1, "nexthop")[7], 2);
    // A better one (len 1 + 1 hop) replaces it.
    sim.schedule(1, 20_000, "route_reply", &[9, 7, 1]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.array(1, "pathlen")[7], 2);
    assert_eq!(sim.array(1, "nexthop")[7], 9);
}

#[test]
fn rr_pings_stamp_link_status() {
    let prog = app("rr");
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));
    sim.schedule(1, 1_000_000, "ping_all", &[]).unwrap();
    sim.run(10_000, 1_100_000).unwrap();
    // Neighbors 2 and 3 answered; their pong stamped switch 1's table.
    assert!(sim.array(1, "linkstat")[2] > 0);
    assert!(sim.array(1, "linkstat")[3] > 0);
}

// --------------------------------------------------------------- DNS ----

#[test]
fn dns_attack_trips_threshold_and_blocks() {
    let prog = app("dns");
    let mut sim = Interp::single(&prog);
    for i in 0..150u64 {
        sim.schedule(1, i * 100, "dns_resp", &[777]).unwrap();
    }
    sim.run_to_quiescence().unwrap();
    assert!(sim.array(1, "blocked_cnt")[0] > 0, "threshold crossed");
    sim.clear_trace();
    sim.schedule(1, 1_000_000, "client_pkt", &[1, 777]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(count(&sim, "blocked"), 1);
    assert_eq!(count(&sim, "deliver"), 0);
}

#[test]
fn dns_normal_volume_not_blocked() {
    let prog = app("dns");
    let mut sim = Interp::single(&prog);
    for i in 0..50u64 {
        sim.schedule(1, i * 100, "dns_resp", &[777]).unwrap();
    }
    sim.schedule(1, 1_000_000, "client_pkt", &[1, 777]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(count(&sim, "deliver"), 1);
    assert_eq!(count(&sim, "blocked"), 0);
}

#[test]
fn dns_other_destinations_unaffected_by_block() {
    let prog = app("dns");
    let mut sim = Interp::single(&prog);
    for i in 0..150u64 {
        sim.schedule(1, i * 100, "dns_resp", &[777]).unwrap();
    }
    sim.schedule(1, 1_000_000, "client_pkt", &[1, 12345])
        .unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(count(&sim, "deliver"), 1, "unrelated destination must pass");
}

#[test]
fn dns_sketch_aging_decays_counts() {
    let prog = app("dns");
    let mut sim = Interp::single(&prog);
    for i in 0..90u64 {
        sim.schedule(1, i * 100, "dns_resp", &[777]).unwrap();
    }
    sim.run_to_quiescence().unwrap();
    let hot_before: u64 = sim.array(1, "cm_a").iter().sum();
    assert!(hot_before >= 90);
    // One full aging sweep: 1024 cells at 50 µs each.
    sim.schedule(1, 100_000, "age", &[0]).unwrap();
    sim.run(10_000, 100_000 + 1024 * 50_000 + 60_000).unwrap();
    let hot_after: u64 = sim.array(1, "cm_a").iter().sum();
    assert_eq!(hot_after, 0, "sweep must clear the sketch");
}

// ------------------------------------------------------------- *Flow ----

#[test]
fn starflow_batches_same_flow() {
    let prog = app("starflow");
    let mut sim = Interp::single(&prog);
    for i in 0..10u64 {
        sim.schedule(1, i * 1_000, "pkt", &[42, 100]).unwrap();
    }
    sim.run_to_quiescence().unwrap();
    let total_pkts: u64 = sim.array(1, "pkts").iter().sum();
    let total_bytes: u64 = sim.array(1, "bytes").iter().sum();
    assert_eq!(total_pkts, 10);
    assert_eq!(total_bytes, 1_000);
    assert_eq!(
        count(&sim, "flow_record"),
        0,
        "no eviction for a single flow"
    );
}

#[test]
fn starflow_flush_exports_and_clears() {
    let prog = app("starflow");
    let mut sim = Interp::single(&prog);
    for key in [1u64, 2, 3] {
        for i in 0..5u64 {
            sim.schedule(1, key * 10_000 + i * 100, "pkt", &[key, 64])
                .unwrap();
        }
    }
    sim.run_to_quiescence().unwrap();
    // One full flush sweep (1024 slots × 200 µs).
    sim.schedule(1, 100_000, "flush", &[0]).unwrap();
    sim.run(20_000, 100_000 + 1024 * 200_000 + 300_000).unwrap();
    let exported: u64 = sim
        .trace
        .iter()
        .filter(|h| &*h.event == "flow_record")
        .map(|h| h.args[1])
        .sum();
    assert_eq!(exported, 15, "all batched packets must be exported");
    assert_eq!(sim.array(1, "pkts").iter().sum::<u64>(), 0, "cache cleared");
}

#[test]
fn starflow_eviction_exports_previous_batch() {
    let prog = app("starflow");
    let mut sim = Interp::single(&prog);
    // Find two keys that collide in the 1024-slot cache.
    let slot_of = |k: u64| lucid_interp::lucid_hash(10, 7, &[k]);
    let a = 1u64;
    let b = (2..100_000u64)
        .find(|&b| slot_of(b) == slot_of(a))
        .expect("collision exists");
    for i in 0..4u64 {
        sim.schedule(1, i * 1_000, "pkt", &[a, 100]).unwrap();
    }
    sim.schedule(1, 10_000, "pkt", &[b, 60]).unwrap();
    sim.run_to_quiescence().unwrap();
    let rec = sim
        .trace
        .iter()
        .find(|h| &*h.event == "flow_record")
        .expect("evicted");
    assert_eq!(rec.args[0], a & 0xffff_ffff, "old flow exported");
    assert_eq!(rec.args[1], 4, "with its packet count");
    assert_eq!(sim.array(1, "evictions")[0], 1);
}

// --------------------------------------------------------------- SRO ----

#[test]
fn sro_write_anywhere_reaches_all_replicas() {
    let prog = app("sro");
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));
    // A write submitted at a non-sequencer replica.
    sim.schedule(3, 0, "write_req", &[7, 999]).unwrap();
    sim.run_to_quiescence().unwrap();
    for s in [1, 2, 3] {
        assert_eq!(sim.array(s, "data")[7], 999, "replica {s}");
        assert_eq!(sim.array(s, "applied")[0], 1);
    }
    assert_eq!(sim.array(1, "seq")[0], 1, "sequencer assigned one number");
    assert_eq!(sim.array(2, "seq")[0], 0, "only the sequencer sequences");
}

#[test]
fn sro_sequencer_orders_concurrent_writes() {
    let prog = app("sro");
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));
    for i in 0..10u64 {
        let origin = 1 + (i % 3);
        sim.schedule(origin, i * 10, "write_req", &[5, 1000 + i])
            .unwrap();
    }
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.array(1, "seq")[0], 10);
    // All replicas converge to the same final value.
    let v1 = sim.array(1, "data")[5];
    assert_eq!(sim.array(2, "data")[5], v1);
    assert_eq!(sim.array(3, "data")[5], v1);
    for s in [1, 2, 3] {
        assert_eq!(sim.array(s, "applied")[0], 10);
    }
}

#[test]
fn sro_reads_are_local() {
    let prog = app("sro");
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));
    sim.schedule(1, 0, "write_req", &[3, 42]).unwrap();
    sim.run_to_quiescence().unwrap();
    sim.clear_trace();
    let remote_before = sim.stats.sent_remote;
    sim.schedule(2, 100_000, "read_req", &[3]).unwrap();
    sim.run_to_quiescence().unwrap();
    let reply = sim
        .trace
        .iter()
        .find(|h| &*h.event == "read_reply")
        .expect("replied");
    assert_eq!(reply.args, vec![3, 42]);
    assert_eq!(
        sim.stats.sent_remote, remote_before,
        "no cross-switch traffic for reads"
    );
}

// --------------------------------------------------------------- DFW ----

#[test]
fn dfw_outbound_at_one_border_admits_return_at_another() {
    let prog = app("dfw");
    let mut sim = Interp::new(&prog, NetConfig::mesh(2));
    sim.schedule(1, 0, "pkt_out", &[10, 20]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert!(sim.array(2, "synced")[0] >= 1, "update synchronized");
    sim.clear_trace();
    // Return traffic enters through the *other* border switch.
    sim.schedule(2, 100_000, "pkt_in", &[20, 10]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(count(&sim, "fwd"), 1);
    assert_eq!(count(&sim, "dropped"), 0);
}

#[test]
fn dfw_unknown_inbound_dropped() {
    let prog = app("dfw");
    let mut sim = Interp::new(&prog, NetConfig::mesh(2));
    sim.schedule(2, 0, "pkt_in", &[66, 77]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(count(&sim, "dropped"), 1);
}

// ------------------------------------------------------------ DFW(a) ----

#[test]
fn dfw_aging_admits_fresh_flows() {
    let prog = app("dfw_aging");
    let mut sim = Interp::new(&prog, NetConfig::mesh(2));
    sim.schedule(1, 0, "pkt_out", &[10, 20]).unwrap();
    sim.run_to_quiescence().unwrap();
    sim.clear_trace();
    sim.schedule(2, 50_000, "pkt_in", &[20, 10]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(count(&sim, "fwd"), 1);
}

#[test]
fn dfw_aging_expires_idle_flows_after_two_rotations() {
    let prog = app("dfw_aging");
    let mut sim = Interp::new(&prog, NetConfig::mesh(2));
    sim.schedule(1, 0, "pkt_out", &[10, 20]).unwrap();
    sim.run_to_quiescence().unwrap();
    // Run the aging thread on switch 2 for two-plus full sweeps
    // (1024 cells × 50 µs each ⇒ ~51 ms per rotation).
    sim.schedule(2, 10_000, "age", &[0]).unwrap();
    sim.run(20_000, 120_000_000).unwrap();
    assert!(sim.array(2, "active")[0] <= 1);
    sim.clear_trace();
    sim.schedule(2, sim.now_ns + 1_000, "pkt_in", &[20, 10])
        .unwrap();
    sim.run(100_000, sim.now_ns + 5_000_000).unwrap();
    assert_eq!(count(&sim, "dropped"), 1, "both generations aged out");
}

// --------------------------------------------------------------- RIP ----

#[test]
fn rip_converges_to_destination() {
    let prog = app("rip");
    let mut sim = Interp::new(&prog, NetConfig::mesh(4));
    const INF: u64 = 1_000_000;
    // Switch 4 is the destination (distance 0); everyone else starts at
    // infinity.
    for s in [1, 2, 3] {
        sim.schedule(s, 0, "init_dist", &[INF]).unwrap();
    }
    sim.schedule(4, 0, "init_dist", &[0]).unwrap();
    for s in [1, 2, 3, 4] {
        sim.schedule(s, 1_000, "advertise", &[]).unwrap();
    }
    // A few advertisement rounds (200 µs apart).
    sim.run(100_000, 2_000_000).unwrap();
    for s in [1, 2, 3] {
        assert_eq!(sim.array(s, "dist")[0], 1, "switch {s} is one hop from 4");
        assert_eq!(sim.array(s, "nhop")[0], 4);
    }
    assert_eq!(sim.array(4, "dist")[0], 0);
}

#[test]
fn rip_forwards_data_packets_toward_destination() {
    let prog = app("rip");
    let mut sim = Interp::new(&prog, NetConfig::mesh(3));
    const INF: u64 = 1_000_000;
    for s in [1, 2] {
        sim.schedule(s, 0, "init_dist", &[INF]).unwrap();
    }
    sim.schedule(3, 0, "init_dist", &[0]).unwrap();
    for s in [1, 2, 3] {
        sim.schedule(s, 1_000, "advertise", &[]).unwrap();
    }
    sim.run(50_000, 1_000_000).unwrap();
    sim.clear_trace();
    sim.schedule(1, 1_100_000, "pkt", &[4242]).unwrap();
    sim.run(50_000, 2_000_000).unwrap();
    let d = sim
        .trace
        .iter()
        .find(|h| &*h.event == "deliver")
        .expect("delivered");
    assert_eq!(d.switch, 3, "delivered at the destination switch");
    assert_eq!(d.args[0], 4242);
}

#[test]
fn rip_unroutable_packet_reports_no_route() {
    let prog = app("rip");
    let mut sim = Interp::new(&prog, NetConfig::mesh(2));
    sim.schedule(1, 0, "init_dist", &[1_000_000]).unwrap();
    sim.schedule(1, 10_000, "pkt", &[1]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(count(&sim, "no_route"), 1);
}

// --------------------------------------------------------------- NAT ----

#[test]
fn nat_allocates_and_translates_outbound() {
    let prog = app("nat");
    let mut sim = Interp::single(&prog);
    sim.schedule(1, 0, "pkt_out", &[1234, 0]).unwrap();
    sim.run_to_quiescence().unwrap();
    // The first packet was buffered (delayed recirculation) until the
    // alloc event installed the mapping, then translated.
    let tx = sim
        .trace
        .iter()
        .find(|h| &*h.event == "tx_out")
        .expect("translated");
    assert_eq!(tx.args[0], 1234);
    let port = tx.args[1];
    assert!(port > 0);
    // Reverse path: packets to that port translate back.
    sim.clear_trace();
    sim.schedule(1, 1_000_000, "pkt_in", &[port]).unwrap();
    sim.run_to_quiescence().unwrap();
    let rx = sim
        .trace
        .iter()
        .find(|h| &*h.event == "tx_in")
        .expect("reverse translated");
    assert_eq!(rx.args, vec![port, 1234]);
}

#[test]
fn nat_subsequent_packets_translate_without_allocation() {
    let prog = app("nat");
    let mut sim = Interp::single(&prog);
    sim.schedule(1, 0, "pkt_out", &[1234, 0]).unwrap();
    sim.run_to_quiescence().unwrap();
    let allocs_before = count(&sim, "alloc");
    assert_eq!(allocs_before, 1);
    sim.schedule(1, 1_000_000, "pkt_out", &[1234, 0]).unwrap();
    sim.run_to_quiescence().unwrap();
    assert_eq!(count(&sim, "alloc"), allocs_before, "no second allocation");
    assert_eq!(count(&sim, "tx_out"), 2);
}

#[test]
fn nat_distinct_flows_get_distinct_ports() {
    let prog = app("nat");
    let mut sim = Interp::single(&prog);
    sim.schedule(1, 0, "pkt_out", &[111, 0]).unwrap();
    sim.schedule(1, 500_000, "pkt_out", &[222, 0]).unwrap();
    sim.run_to_quiescence().unwrap();
    let ports: Vec<u64> = sim
        .trace
        .iter()
        .filter(|h| &*h.event == "tx_out")
        .map(|h| h.args[1])
        .collect();
    assert_eq!(ports.len(), 2);
    assert_ne!(ports[0], ports[1]);
}

// ---------------------------------------------------------------- CM ----

#[test]
fn cm_sketch_counts_and_export_resets() {
    let prog = app("cm");
    let mut sim = Interp::single(&prog);
    for i in 0..20u64 {
        sim.schedule(1, i * 100, "pkt", &[7]).unwrap();
    }
    for i in 0..5u64 {
        sim.schedule(1, i * 100, "pkt", &[8]).unwrap();
    }
    sim.run_to_quiescence().unwrap();
    assert_eq!(sim.array(1, "cm_a").iter().sum::<u64>(), 25);
    // One export sweep: 512 cells at 20 µs.
    sim.schedule(1, 10_000, "report", &[0]).unwrap();
    sim.run(10_000, 10_000 + 512 * 21_000 + 200_000).unwrap();
    let exported_a: u64 = sim
        .trace
        .iter()
        .filter(|h| &*h.event == "sketch_record")
        .map(|h| h.args[2])
        .sum();
    assert_eq!(exported_a, 25, "every count exported exactly once");
    assert_eq!(
        sim.array(1, "cm_a").iter().sum::<u64>(),
        0,
        "reset after export"
    );
    assert_eq!(
        sim.array(1, "epoch")[0],
        1,
        "epoch bumped after a full sweep"
    );
}

#[test]
fn cm_records_carry_epoch() {
    let prog = app("cm");
    let mut sim = Interp::single(&prog);
    sim.schedule(1, 0, "pkt", &[7]).unwrap();
    sim.run_to_quiescence().unwrap();
    sim.schedule(1, 10_000, "report", &[0]).unwrap();
    // Two full sweeps.
    sim.run(50_000, 10_000 + 2 * 512 * 21_000 + 400_000)
        .unwrap();
    let epochs: Vec<u64> = sim
        .trace
        .iter()
        .filter(|h| &*h.event == "sketch_record")
        .map(|h| h.args[0])
        .collect();
    assert!(!epochs.is_empty());
    assert!(
        epochs.contains(&0),
        "first-epoch records tagged 0: {epochs:?}"
    );
}
