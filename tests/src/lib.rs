//! Workspace-level integration-test crate. All content lives in
//! `tests/tests/*.rs`; this library is intentionally empty.

#![forbid(unsafe_code)]
